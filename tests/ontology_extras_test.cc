#include <gtest/gtest.h>

#include "ontology/ontology.h"

namespace graphitti {
namespace ontology {
namespace {

// Diamond + side branch:
//        top
//       /   |
//    left   right       isolated
//       |   /
//      bottom --- leaf (via part_of)
struct Fixture {
  Ontology onto{"x"};
  RelationId is_a, part_of;
  TermId top, left, right, bottom, leaf, isolated;

  Fixture() {
    is_a = onto.AddRelationType("is_a");
    part_of = onto.AddRelationType("part_of");
    top = *onto.AddTerm("T", "top concept");
    left = *onto.AddTerm("L", "left branch");
    right = *onto.AddTerm("R", "right branch");
    bottom = *onto.AddTerm("B", "bottom node");
    leaf = *onto.AddTerm("F", "leaf part");
    isolated = *onto.AddTerm("I", "island");
    EXPECT_TRUE(onto.AddEdge(left, top, is_a).ok());
    EXPECT_TRUE(onto.AddEdge(right, top, is_a).ok());
    EXPECT_TRUE(onto.AddEdge(bottom, left, is_a).ok());
    EXPECT_TRUE(onto.AddEdge(bottom, right, is_a).ok());
    EXPECT_TRUE(onto.AddEdge(leaf, bottom, part_of).ok());
  }
};

TEST(OntologyExtrasTest, AncestorClosure) {
  Fixture f;
  EXPECT_EQ(f.onto.AncestorClosure(f.bottom, f.is_a),
            (std::vector<TermId>{f.top, f.left, f.right, f.bottom}));
  EXPECT_EQ(f.onto.AncestorClosure(f.top, f.is_a), (std::vector<TermId>{f.top}));
  // Wrong relation: only the start itself.
  EXPECT_EQ(f.onto.AncestorClosure(f.leaf, f.is_a), (std::vector<TermId>{f.leaf}));
  EXPECT_TRUE(f.onto.AncestorClosure(999, f.is_a).empty());
}

TEST(OntologyExtrasTest, CommonAncestors) {
  Fixture f;
  EXPECT_EQ(f.onto.CommonAncestors(f.left, f.right, f.is_a), (std::vector<TermId>{f.top}));
  // bottom's ancestors vs left's ancestors share top and left.
  EXPECT_EQ(f.onto.CommonAncestors(f.bottom, f.left, f.is_a),
            (std::vector<TermId>{f.top, f.left}));
  EXPECT_TRUE(f.onto.CommonAncestors(f.left, f.isolated, f.is_a).empty());
}

TEST(OntologyExtrasTest, NearestCommonAncestors) {
  Fixture f;
  // left/right meet at top (1 hop each).
  EXPECT_EQ(f.onto.NearestCommonAncestors(f.left, f.right, f.is_a),
            (std::vector<TermId>{f.top}));
  // bottom/left meet at left itself (distance 1 + 0).
  EXPECT_EQ(f.onto.NearestCommonAncestors(f.bottom, f.left, f.is_a),
            (std::vector<TermId>{f.left}));
  // identical terms: the term itself.
  EXPECT_EQ(f.onto.NearestCommonAncestors(f.top, f.top, f.is_a),
            (std::vector<TermId>{f.top}));
  EXPECT_TRUE(f.onto.NearestCommonAncestors(f.left, f.isolated, f.is_a).empty());
}

TEST(OntologyExtrasTest, PathBetween) {
  Fixture f;
  auto path = f.onto.PathBetween(f.leaf, f.top);
  ASSERT_TRUE(path.ok());
  // leaf -> bottom -> (left|right) -> top.
  EXPECT_EQ(path->size(), 4u);
  EXPECT_EQ(path->front(), f.leaf);
  EXPECT_EQ(path->back(), f.top);

  auto self = f.onto.PathBetween(f.top, f.top);
  ASSERT_TRUE(self.ok());
  EXPECT_EQ(*self, (std::vector<TermId>{f.top}));

  EXPECT_TRUE(f.onto.PathBetween(f.top, f.isolated).status().IsNotFound());
  EXPECT_TRUE(f.onto.PathBetween(f.top, 999).status().IsInvalidArgument());
}

TEST(OntologyExtrasTest, FindTermsByLabel) {
  Fixture f;
  EXPECT_EQ(f.onto.FindTermsByLabel("branch"), (std::vector<TermId>{f.left, f.right}));
  EXPECT_EQ(f.onto.FindTermsByLabel("BRANCH"), (std::vector<TermId>{f.left, f.right}));
  // Matches ids too ("T" appears in several ids: T, B? no—substring of id).
  EXPECT_EQ(f.onto.FindTermsByLabel("island"), (std::vector<TermId>{f.isolated}));
  EXPECT_TRUE(f.onto.FindTermsByLabel("zzz").empty());
  // Empty needle matches everything.
  EXPECT_EQ(f.onto.FindTermsByLabel("").size(), f.onto.num_terms());
}

}  // namespace
}  // namespace ontology
}  // namespace graphitti
