#include "persist/wal.h"

#include <gtest/gtest.h>

#include "persist/fault_env.h"

namespace graphitti {
namespace persist {
namespace {

constexpr char kPath[] = "/db/wal-0";

std::unique_ptr<WalWriter> MustOpen(Env* env, uint64_t generation = 0,
                                    const WalOptions& options = {}) {
  auto w = WalWriter::Open(env, kPath, generation, options);
  EXPECT_TRUE(w.ok()) << w.status().ToString();
  return std::move(*w);
}

TEST(WalTest, RoundTripsRecords) {
  FaultInjectionEnv env;
  {
    auto w = MustOpen(&env);
    ASSERT_TRUE(w->AppendRecord(WalRecordType::kCommitBatch, "payload-one").ok());
    ASSERT_TRUE(w->AppendRecord(WalRecordType::kRemove, "").ok());
    ASSERT_TRUE(w->AppendRecord(WalRecordType::kVacuum, "x").ok());
  }
  auto contents = ReadWal(env, kPath);
  ASSERT_TRUE(contents.ok()) << contents.status().ToString();
  EXPECT_EQ(contents->generation, 0u);
  EXPECT_FALSE(contents->truncated_tail);
  ASSERT_EQ(contents->records.size(), 3u);
  EXPECT_EQ(contents->records[0].type, WalRecordType::kCommitBatch);
  EXPECT_EQ(contents->records[0].payload, "payload-one");
  EXPECT_EQ(contents->records[1].type, WalRecordType::kRemove);
  EXPECT_EQ(contents->records[1].payload, "");
  EXPECT_EQ(contents->records[2].payload, "x");
}

TEST(WalTest, TornTailIsACleanTruncationPoint) {
  FaultInjectionEnv env;
  {
    auto w = MustOpen(&env);
    ASSERT_TRUE(w->AppendRecord(WalRecordType::kCommitBatch, "first record").ok());
    ASSERT_TRUE(w->AppendRecord(WalRecordType::kCommitBatch, "second record").ok());
  }
  std::string data = *env.ReadFileToString(kPath);
  // Chop bytes off the end of the last record: every cut length must still
  // read back as exactly the first record.
  for (size_t cut = 1; cut < 12; ++cut) {
    ASSERT_TRUE(env.TruncateFile(kPath, data.size() - cut).ok());
    auto contents = ReadWal(env, kPath);
    ASSERT_TRUE(contents.ok()) << "cut=" << cut << ": " << contents.status().ToString();
    EXPECT_TRUE(contents->truncated_tail);
    ASSERT_EQ(contents->records.size(), 1u) << "cut=" << cut;
    EXPECT_EQ(contents->records[0].payload, "first record");
  }
}

TEST(WalTest, ReopenTruncatesTornTailAndAppends) {
  FaultInjectionEnv env;
  {
    auto w = MustOpen(&env);
    ASSERT_TRUE(w->AppendRecord(WalRecordType::kCommitBatch, "kept").ok());
    ASSERT_TRUE(w->AppendRecord(WalRecordType::kCommitBatch, "torn away").ok());
  }
  std::string data = *env.ReadFileToString(kPath);
  ASSERT_TRUE(env.TruncateFile(kPath, data.size() - 3).ok());
  {
    auto w = MustOpen(&env);  // reopen: validates header, truncates torn tail
    ASSERT_TRUE(w->AppendRecord(WalRecordType::kCommitBatch, "appended after").ok());
  }
  auto contents = ReadWal(env, kPath);
  ASSERT_TRUE(contents.ok());
  EXPECT_FALSE(contents->truncated_tail);
  ASSERT_EQ(contents->records.size(), 2u);
  EXPECT_EQ(contents->records[0].payload, "kept");
  EXPECT_EQ(contents->records[1].payload, "appended after");
}

TEST(WalTest, CorruptRecordStopsReplayAtPrefix) {
  FaultInjectionEnv env;
  {
    auto w = MustOpen(&env);
    ASSERT_TRUE(w->AppendRecord(WalRecordType::kCommitBatch, "aaaaaaaaaa").ok());
    ASSERT_TRUE(w->AppendRecord(WalRecordType::kCommitBatch, "bbbbbbbbbb").ok());
  }
  std::string data = *env.ReadFileToString(kPath);
  data[data.size() - 2] ^= 0x40;  // flip a bit inside the second payload
  {
    auto f = env.NewWritableFile(kPath, /*truncate=*/true);
    ASSERT_TRUE(f.ok());
    ASSERT_TRUE((*f)->Append(data).ok());
    ASSERT_TRUE((*f)->Sync().ok());
  }
  auto contents = ReadWal(env, kPath);
  ASSERT_TRUE(contents.ok()) << contents.status().ToString();
  EXPECT_TRUE(contents->truncated_tail);
  ASSERT_EQ(contents->records.size(), 1u);
  EXPECT_EQ(contents->records[0].payload, "aaaaaaaaaa");
}

TEST(WalTest, GenerationMismatchRefused) {
  FaultInjectionEnv env;
  { auto w = MustOpen(&env, /*generation=*/3); }
  auto reopened = WalWriter::Open(&env, kPath, /*generation=*/4, WalOptions{});
  EXPECT_FALSE(reopened.ok());
  EXPECT_TRUE(reopened.status().IsInternal()) << reopened.status().ToString();

  auto contents = ReadWal(env, kPath);
  ASSERT_TRUE(contents.ok());
  EXPECT_EQ(contents->generation, 3u);
}

TEST(WalTest, EmptyWalReadsBackEmpty) {
  FaultInjectionEnv env;
  { auto w = MustOpen(&env); }
  auto contents = ReadWal(env, kPath);
  ASSERT_TRUE(contents.ok());
  EXPECT_TRUE(contents->records.empty());
  EXPECT_FALSE(contents->truncated_tail);
}

TEST(WalTest, GarbageHeaderRefused) {
  FaultInjectionEnv env;
  {
    auto f = env.NewWritableFile(kPath, true);
    ASSERT_TRUE(f.ok());
    ASSERT_TRUE((*f)->Append("this is not a WAL header at all").ok());
    ASSERT_TRUE((*f)->Sync().ok());
  }
  EXPECT_FALSE(ReadWal(env, kPath).ok());
  EXPECT_FALSE(WalWriter::Open(&env, kPath, 0, WalOptions{}).ok());
}

TEST(WalTest, IntervalSyncPolicyLeavesTailUnsyncedUntilDeadline) {
  FaultInjectionEnv env;
  WalOptions opts;
  opts.sync_policy = WalOptions::SyncPolicy::kInterval;
  opts.interval_ms = 60 * 1000;  // nothing syncs within this test
  auto w = MustOpen(&env, 0, opts);
  ASSERT_TRUE(w->AppendRecord(WalRecordType::kCommitBatch, "group committed").ok());
  // A crash now loses the unsynced record but keeps the synced header.
  env.Crash();
  auto contents = ReadWal(env, kPath);
  ASSERT_TRUE(contents.ok()) << contents.status().ToString();
  EXPECT_TRUE(contents->records.empty());
  // Explicit Sync() pins the tail.
  auto w2 = MustOpen(&env, 0, opts);
  ASSERT_TRUE(w2->AppendRecord(WalRecordType::kCommitBatch, "pinned").ok());
  ASSERT_TRUE(w2->Sync().ok());
  env.Crash();
  contents = ReadWal(env, kPath);
  ASSERT_TRUE(contents.ok());
  ASSERT_EQ(contents->records.size(), 1u);
  EXPECT_EQ(contents->records[0].payload, "pinned");
}

}  // namespace
}  // namespace persist
}  // namespace graphitti
