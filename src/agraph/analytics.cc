// Admin-tab graph analytics: components, degree stats, bounded path
// enumeration for exploratory browsing. All traversals run on the shared
// epoch-stamped scratch — no per-call O(V) allocation.
#include <algorithm>

#include "agraph/agraph.h"

namespace graphitti {
namespace agraph {

std::vector<std::vector<NodeRef>> AGraph::ConnectedComponents() const {
  std::vector<std::vector<NodeRef>> components;
  util::TraversalScratch& s = Scratch();
  s.set_a.Begin(refs_.size());
  for (uint32_t start = 0; start < refs_.size(); ++start) {
    if (!s.set_a.Insert(start)) continue;
    std::vector<NodeRef> component;
    s.queue.clear();
    s.queue.push_back(start);
    for (size_t head = 0; head < s.queue.size(); ++head) {
      uint32_t cur = s.queue[head];
      component.push_back(refs_[cur]);
      for (const Edge& e : out_[cur]) {
        if (s.set_a.Insert(e.other)) s.queue.push_back(e.other);
      }
      for (const Edge& e : in_[cur]) {
        if (s.set_a.Insert(e.other)) s.queue.push_back(e.other);
      }
    }
    std::sort(component.begin(), component.end());
    components.push_back(std::move(component));
  }
  std::sort(components.begin(), components.end(),
            [](const std::vector<NodeRef>& a, const std::vector<NodeRef>& b) {
              return a.front() < b.front();
            });
  return components;
}

// lint: allow-map(stats surface: tiny, ordered output for display)
std::map<NodeKind, size_t> AGraph::CountByKind() const {
  // lint: allow-map(same: a handful of kinds, built once per call)
  std::map<NodeKind, size_t> counts;
  for (const NodeRef& ref : refs_) ++counts[ref.kind];
  return counts;
}

AGraph::DegreeStats AGraph::Degrees() const {
  DegreeStats stats;
  if (refs_.empty()) return stats;
  stats.min = SIZE_MAX;
  size_t total = 0;
  for (size_t i = 0; i < refs_.size(); ++i) {
    size_t degree = out_[i].size() + in_[i].size();
    stats.min = std::min(stats.min, degree);
    stats.max = std::max(stats.max, degree);
    total += degree;
  }
  stats.mean = static_cast<double>(total) / static_cast<double>(refs_.size());
  return stats;
}

std::vector<Path> AGraph::AllPaths(NodeRef from, NodeRef to, size_t max_hops,
                                   size_t max_paths) const {
  std::vector<Path> paths;
  auto from_idx = DenseIndex(from);
  auto to_idx = DenseIndex(to);
  if (!from_idx.ok() || !to_idx.ok() || max_paths == 0) return paths;

  util::TraversalScratch& s = Scratch();
  util::EpochVisitSet& on_path = s.set_a;
  on_path.Begin(refs_.size());

  // Iterative DFS; each frame's cursor indexes the node's out-edges followed
  // by its in-edges (the undirected view) directly — no materialized merged
  // adjacency.
  struct Frame {
    uint32_t node;
    size_t cursor = 0;
  };
  auto edge_at = [&](uint32_t node, size_t cursor) -> const Edge* {
    const std::vector<Edge>& outs = out_[node];
    if (cursor < outs.size()) return &outs[cursor];
    size_t j = cursor - outs.size();
    const std::vector<Edge>& ins = in_[node];
    return j < ins.size() ? &ins[j] : nullptr;
  };

  std::vector<Frame> stack;
  std::vector<uint32_t> node_stack;
  std::vector<uint32_t> label_stack;
  stack.push_back({*from_idx});
  on_path.Insert(*from_idx);
  node_stack.push_back(*from_idx);

  while (!stack.empty() && paths.size() < max_paths) {
    Frame& frame = stack.back();
    const Edge* edge = edge_at(frame.node, frame.cursor);
    if (edge == nullptr || node_stack.size() > max_hops) {
      // Backtrack (also cuts off when the hop budget cannot admit children).
      on_path.Erase(frame.node);
      node_stack.pop_back();
      if (!label_stack.empty()) label_stack.pop_back();
      stack.pop_back();
      continue;
    }
    ++frame.cursor;
    uint32_t next = edge->other;
    if (on_path.Contains(next)) continue;
    if (next == *to_idx) {
      Path p;
      for (uint32_t n : node_stack) p.nodes.push_back(refs_[n]);
      p.nodes.push_back(refs_[next]);
      for (uint32_t l : label_stack) p.edge_labels.push_back(labels_[l]);
      p.edge_labels.push_back(labels_[edge->label]);
      paths.push_back(std::move(p));
      continue;
    }
    if (node_stack.size() >= max_hops) continue;  // no budget to go deeper
    on_path.Insert(next);
    node_stack.push_back(next);
    label_stack.push_back(edge->label);
    stack.push_back({next});
  }
  return paths;
}

}  // namespace agraph
}  // namespace graphitti
