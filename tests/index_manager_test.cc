#include <gtest/gtest.h>

#include "spatial/index_manager.h"

namespace graphitti {
namespace spatial {
namespace {

TEST(IndexManagerTest, OneIntervalTreePerDomain) {
  IndexManager mgr;
  // Many sequences share the same chromosome domain -> one tree.
  for (uint64_t i = 0; i < 50; ++i) {
    ASSERT_TRUE(mgr.AddInterval("chr1", Interval(static_cast<int64_t>(i) * 10,
                                                 static_cast<int64_t>(i) * 10 + 5),
                                i)
                    .ok());
  }
  for (uint64_t i = 0; i < 30; ++i) {
    ASSERT_TRUE(mgr.AddInterval("chr2", Interval(static_cast<int64_t>(i), static_cast<int64_t>(i) + 2),
                                100 + i)
                    .ok());
  }
  EXPECT_EQ(mgr.num_interval_trees(), 2u);  // not 80
  EXPECT_EQ(mgr.total_interval_entries(), 80u);
  EXPECT_EQ(mgr.IntervalDomains(), (std::vector<std::string>{"chr1", "chr2"}));
}

TEST(IndexManagerTest, IntervalQueriesRouteToDomain) {
  IndexManager mgr;
  ASSERT_TRUE(mgr.AddInterval("chr1", Interval(0, 10), 1).ok());
  ASSERT_TRUE(mgr.AddInterval("chr2", Interval(0, 10), 2).ok());
  auto hits = mgr.QueryIntervals("chr1", Interval(5, 6));
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].id, 1u);
  EXPECT_TRUE(mgr.QueryIntervals("chr9", Interval(0, 100)).empty());
}

TEST(IndexManagerTest, NextIntervalPerDomain) {
  IndexManager mgr;
  ASSERT_TRUE(mgr.AddInterval("chr1", Interval(10, 20), 1).ok());
  ASSERT_TRUE(mgr.AddInterval("chr1", Interval(40, 50), 2).ok());
  auto next = mgr.NextInterval("chr1", 10);
  ASSERT_TRUE(next.has_value());
  EXPECT_EQ(next->id, 2u);
  EXPECT_FALSE(mgr.NextInterval("chr1", 40).has_value());
  EXPECT_FALSE(mgr.NextInterval("nope", 0).has_value());
}

TEST(IndexManagerTest, RemoveIntervalDropsEmptyTree) {
  IndexManager mgr;
  ASSERT_TRUE(mgr.AddInterval("chr1", Interval(0, 5), 1).ok());
  EXPECT_EQ(mgr.num_interval_trees(), 1u);
  ASSERT_TRUE(mgr.RemoveInterval("chr1", Interval(0, 5), 1).ok());
  EXPECT_EQ(mgr.num_interval_trees(), 0u);
  EXPECT_TRUE(mgr.RemoveInterval("chr1", Interval(0, 5), 1).IsNotFound());
}

TEST(IndexManagerTest, EmptyDomainRejected) {
  IndexManager mgr;
  EXPECT_TRUE(mgr.AddInterval("", Interval(0, 1), 1).IsInvalidArgument());
}

TEST(IndexManagerTest, RegionsShareCanonicalRTree) {
  IndexManager mgr;
  ASSERT_TRUE(mgr.coordinate_systems().RegisterCanonical("atlas_25um", 2).ok());
  ASSERT_TRUE(mgr.coordinate_systems()
                  .RegisterDerived("atlas_50um", "atlas_25um", {2, 2, 1}, {0, 0, 0})
                  .ok());

  // Regions from images at both resolutions.
  ASSERT_TRUE(mgr.AddRegion("atlas_25um", Rect::Make2D(0, 0, 10, 10), 1).ok());
  ASSERT_TRUE(mgr.AddRegion("atlas_50um", Rect::Make2D(0, 0, 5, 5), 2).ok());

  EXPECT_EQ(mgr.num_rtrees(), 1u);  // one shared R-tree, not two
  EXPECT_EQ(mgr.total_region_entries(), 2u);
  EXPECT_EQ(mgr.RegionSystems(), (std::vector<std::string>{"atlas_25um"}));

  // The 50um region [0,5]^2 maps to canonical [0,10]^2, overlapping region 1.
  auto hits = mgr.QueryRegions("atlas_25um", Rect::Make2D(8, 8, 9, 9));
  ASSERT_TRUE(hits.ok());
  EXPECT_EQ(hits->size(), 2u);

  // Query expressed in 50um space finds the same entries.
  auto hits50 = mgr.QueryRegions("atlas_50um", Rect::Make2D(4, 4, 4.5, 4.5));
  ASSERT_TRUE(hits50.ok());
  EXPECT_EQ(hits50->size(), 2u);
}

TEST(IndexManagerTest, RegionRequiresRegisteredSystem) {
  IndexManager mgr;
  EXPECT_TRUE(mgr.AddRegion("nope", Rect::Make2D(0, 0, 1, 1), 1).IsNotFound());
  EXPECT_TRUE(mgr.QueryRegions("nope", Rect::Make2D(0, 0, 1, 1)).status().IsNotFound());
}

TEST(IndexManagerTest, RemoveRegionDropsEmptyTree) {
  IndexManager mgr;
  ASSERT_TRUE(mgr.coordinate_systems().RegisterCanonical("cs", 2).ok());
  ASSERT_TRUE(mgr.AddRegion("cs", Rect::Make2D(0, 0, 1, 1), 1).ok());
  EXPECT_EQ(mgr.num_rtrees(), 1u);
  ASSERT_TRUE(mgr.RemoveRegion("cs", Rect::Make2D(0, 0, 1, 1), 1).ok());
  EXPECT_EQ(mgr.num_rtrees(), 0u);
  EXPECT_TRUE(mgr.RemoveRegion("cs", Rect::Make2D(0, 0, 1, 1), 1).IsNotFound());
}

TEST(IndexManagerTest, SmallBatchBulkLoadMatchesRebuildPath) {
  IndexManager mgr;
  std::vector<IntervalEntry> base;
  for (uint64_t i = 0; i < 200; ++i) {
    int64_t lo = static_cast<int64_t>(i) * 10;
    base.push_back({Interval(lo, lo + 5), i});
  }
  ASSERT_TRUE(mgr.BulkLoadIntervals("chr1", base).ok());

  // 3 * factor(16) = 48 <= 200: routes to per-entry inserts instead of a
  // drain-and-rebuild of all 203 entries.
  std::vector<IntervalEntry> small = {{Interval(3, 4), 1000},
                                      {Interval(503, 504), 1001},
                                      {Interval(1903, 1904), 1002}};
  ASSERT_TRUE(mgr.BulkLoadIntervals("chr1", small).ok());
  EXPECT_EQ(mgr.total_interval_entries(), 203u);
  auto hits = mgr.QueryIntervals("chr1", Interval(503, 504));
  ASSERT_EQ(hits.size(), 2u);  // base entry 50 and new entry 1001

  // With the fallback disabled the same call takes the rebuild path and
  // must be query-equivalent.
  mgr.set_small_batch_factor(0);
  std::vector<IntervalEntry> more = {{Interval(7, 8), 2000}};
  ASSERT_TRUE(mgr.BulkLoadIntervals("chr1", more).ok());
  EXPECT_EQ(mgr.total_interval_entries(), 204u);
  EXPECT_EQ(mgr.QueryIntervals("chr1", Interval(0, 9)).size(), 3u);
}

TEST(IndexManagerTest, SmallBatchBulkLoadRollsBackOnFailure) {
  IndexManager mgr;
  std::vector<IntervalEntry> base;
  for (uint64_t i = 0; i < 100; ++i) {
    int64_t lo = static_cast<int64_t>(i) * 10;
    base.push_back({Interval(lo, lo + 5), i});
  }
  ASSERT_TRUE(mgr.BulkLoadIntervals("chr1", base).ok());

  // Second entry collides with existing entry 7: the whole batch must roll
  // back (all-or-nothing, matching the rebuild path's contract).
  std::vector<IntervalEntry> bad = {{Interval(1, 2), 500}, {Interval(70, 75), 7}};
  EXPECT_TRUE(mgr.BulkLoadIntervals("chr1", bad).IsAlreadyExists());
  EXPECT_EQ(mgr.total_interval_entries(), 100u);
  for (const IntervalEntry& e : mgr.QueryIntervals("chr1", Interval(1, 2))) {
    EXPECT_NE(e.id, 500u);  // the rolled-back first entry must be gone
  }
}

TEST(IndexManagerTest, SmallBatchRegionBulkLoadCanonicalizes) {
  IndexManager mgr;
  ASSERT_TRUE(mgr.coordinate_systems().RegisterCanonical("atlas_25um", 2).ok());
  ASSERT_TRUE(mgr.coordinate_systems()
                  .RegisterDerived("atlas_50um", "atlas_25um", {2, 2, 1}, {0, 0, 0})
                  .ok());
  std::vector<RTreeEntry> base;
  for (uint64_t i = 0; i < 100; ++i) {
    double x = static_cast<double>(i) * 20.0;
    base.push_back({Rect::Make2D(x, 0, x + 10, 10), i});
  }
  ASSERT_TRUE(mgr.BulkLoadRegions("atlas_25um", base).ok());

  // A small batch in the derived system still lands canonicalized in the
  // shared tree.
  std::vector<RTreeEntry> small = {{Rect::Make2D(0, 0, 5, 5), 900}};
  ASSERT_TRUE(mgr.BulkLoadRegions("atlas_50um", small).ok());
  EXPECT_EQ(mgr.num_rtrees(), 1u);
  EXPECT_EQ(mgr.total_region_entries(), 101u);
  auto hits = mgr.QueryRegions("atlas_25um", Rect::Make2D(9, 9, 9.5, 9.5));
  ASSERT_TRUE(hits.ok());
  EXPECT_EQ(hits->size(), 2u);  // base entry 0 and the scaled 50um region
}

TEST(IndexManagerTest, GetTreeAccessors) {
  IndexManager mgr;
  EXPECT_EQ(mgr.GetIntervalTree("chr1"), nullptr);
  ASSERT_TRUE(mgr.AddInterval("chr1", Interval(0, 5), 1).ok());
  ASSERT_NE(mgr.GetIntervalTree("chr1"), nullptr);
  EXPECT_EQ(mgr.GetIntervalTree("chr1")->size(), 1u);

  EXPECT_EQ(mgr.GetRTree("cs"), nullptr);
  ASSERT_TRUE(mgr.coordinate_systems().RegisterCanonical("cs", 3).ok());
  ASSERT_TRUE(mgr.AddRegion("cs", Rect::Make3D(0, 0, 0, 1, 1, 1), 2).ok());
  ASSERT_NE(mgr.GetRTree("cs"), nullptr);
  EXPECT_EQ(mgr.GetRTree("cs")->dims(), 3);
}

}  // namespace
}  // namespace spatial
}  // namespace graphitti
