#include <gtest/gtest.h>

#include "annotation/annotation.h"
#include "annotation/dublin_core.h"
#include "xml/xml_parser.h"
#include "xml/xpath.h"

namespace graphitti {
namespace annotation {
namespace {

TEST(DublinCoreTest, AppendToSkipsEmptyFields) {
  DublinCore dc;
  dc.title = "T";
  dc.creator = "C";
  auto root = xml::XmlNode::Element("annotation");
  dc.AppendTo(root.get());
  EXPECT_EQ(root->children().size(), 2u);
  EXPECT_EQ(root->FirstChildElement("dc:title")->InnerText(), "T");
  EXPECT_EQ(root->FirstChildElement("dc:creator")->InnerText(), "C");
  EXPECT_EQ(root->FirstChildElement("dc:subject"), nullptr);
}

TEST(DublinCoreTest, FromXmlRoundTrip) {
  DublinCore dc;
  dc.title = "Observation";
  dc.creator = "condit";
  dc.subject = "protein.TP53";
  dc.date = "2007-11-02";
  dc.language = "en";
  auto root = xml::XmlNode::Element("annotation");
  dc.AppendTo(root.get());
  DublinCore back = DublinCore::FromXml(root.get());
  EXPECT_EQ(back, dc);
}

TEST(DublinCoreTest, FromXmlNullAndMissing) {
  DublinCore empty = DublinCore::FromXml(nullptr);
  EXPECT_TRUE(empty.title.empty());
  auto root = xml::XmlNode::Element("annotation");
  EXPECT_EQ(DublinCore::FromXml(root.get()), DublinCore{});
}

TEST(DublinCoreTest, NonEmptyFields) {
  DublinCore dc;
  dc.title = "a";
  dc.rights = "b";
  auto fields = dc.NonEmptyFields();
  ASSERT_EQ(fields.size(), 2u);
  EXPECT_EQ(fields[0].first, "title");
  EXPECT_EQ(fields[1].first, "rights");
}

TEST(AnnotationBuilderTest, FluentFieldsAccumulate) {
  AnnotationBuilder b;
  b.Title("T").Creator("C").Subject("S").Description("D").Date("2008-01-01").Source("src");
  b.Body("comment text");
  b.UserTag("confidence", "high");
  EXPECT_EQ(b.dc().title, "T");
  EXPECT_EQ(b.dc().source, "src");
  EXPECT_EQ(b.body(), "comment text");
  ASSERT_EQ(b.user_tags().size(), 1u);
  EXPECT_EQ(b.user_tags()[0].second, "high");
}

TEST(AnnotationBuilderTest, MarkersAccumulate) {
  AnnotationBuilder b;
  b.MarkInterval("chr1", 10, 20, 5)
      .MarkRegion("atlas", spatial::Rect::Make2D(0, 0, 1, 1), 6)
      .MarkBlockSet("t", {1, 2}, 7)
      .MarkNodeSet("g", {3}, 8)
      .MarkClade("tree", {4, 5}, 9);
  ASSERT_EQ(b.marks().size(), 5u);
  EXPECT_EQ(b.marks()[0].first.type(), substructure::SubType::kInterval);
  EXPECT_EQ(b.marks()[0].second, 5u);
  EXPECT_EQ(b.marks()[4].first.type(), substructure::SubType::kTreeClade);
}

TEST(AnnotationBuilderTest, MarkIntervalsAddsOnePerSubinterval) {
  // "the user ... marks the start and end points of all subintervals that
  // would be referred to by a single annotation" (Fig. 2 flow).
  AnnotationBuilder b;
  b.MarkIntervals("chr1", {{0, 10}, {20, 30}, {40, 50}}, 1);
  EXPECT_EQ(b.marks().size(), 3u);
}

TEST(AnnotationBuilderTest, OntologyReferences) {
  AnnotationBuilder b;
  b.OntologyReference("nif", "NIF:0001").OntologyReference("go", "GO:42");
  ASSERT_EQ(b.ontology_refs().size(), 2u);
  EXPECT_EQ(b.ontology_refs()[0].Qualified(), "nif:NIF:0001");
}

TEST(AnnotationBuilderTest, BuildContentXmlStructure) {
  AnnotationBuilder b;
  b.Title("Observation").Creator("condit").Body("protease site");
  b.UserTag("confidence", "0.9");
  b.OntologyReference("nif", "NIF:0001");
  b.MarkInterval("flu:seg4", 100, 200, 3);

  auto doc = b.BuildContentXml(7);
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  const xml::XmlNode* root = doc->root();
  EXPECT_EQ(root->tag(), "annotation");
  EXPECT_EQ(*root->FindAttribute("id"), "7");
  EXPECT_EQ(root->FirstChildElement("dc:title")->InnerText(), "Observation");
  EXPECT_EQ(root->FirstChildElement("body")->InnerText(), "protease site");
  EXPECT_EQ(root->FirstChildElement("user:confidence")->InnerText(), "0.9");

  auto onto_refs = xml::EvaluateXPath("//ontology-ref", root);
  ASSERT_EQ(onto_refs.size(), 1u);
  EXPECT_EQ(*onto_refs[0].node->FindAttribute("term"), "NIF:0001");

  auto ref_refs = xml::EvaluateXPath("//referent-ref[@type='interval']", root);
  ASSERT_EQ(ref_refs.size(), 1u);
  EXPECT_EQ(*ref_refs[0].node->FindAttribute("domain"), "flu:seg4");
  EXPECT_EQ(*ref_refs[0].node->FindAttribute("object"), "3");
}

TEST(AnnotationBuilderTest, BuildContentXmlParsesBack) {
  AnnotationBuilder b;
  b.Title("Round & trip <test>").Body("with \"special\" characters");
  b.MarkInterval("chr1", 0, 5);
  auto doc = b.BuildContentXml(1);
  ASSERT_TRUE(doc.ok());
  auto reparsed = xml::ParseXml(doc->ToString());
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString();
  EXPECT_EQ(reparsed->root()->FirstChildElement("dc:title")->InnerText(),
            "Round & trip <test>");
}

TEST(AnnotationBuilderTest, AnonymousIdOmitsAttribute) {
  AnnotationBuilder b;
  b.Title("x").MarkInterval("d", 0, 1);
  auto doc = b.BuildContentXml(0);
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->root()->FindAttribute("id"), nullptr);
}

TEST(AnnotationBuilderTest, InvalidMarksRejected) {
  AnnotationBuilder b;
  b.MarkInterval("chr1", 10, 5);  // inverted
  EXPECT_TRUE(b.BuildContentXml(1).status().IsInvalidArgument());

  AnnotationBuilder b2;
  b2.UserTag("", "value").MarkInterval("d", 0, 1);
  EXPECT_TRUE(b2.BuildContentXml(1).status().IsInvalidArgument());
}

}  // namespace
}  // namespace annotation
}  // namespace graphitti
