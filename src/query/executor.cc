#include "query/executor.h"

#include <algorithm>
#include <map>
#include <set>
#include <unordered_set>

#include "query/parser.h"
#include "substructure/operators.h"
#include "xml/xpath.h"

namespace graphitti {
namespace query {

namespace {

using agraph::NodeKind;
using agraph::NodeRef;
using agraph::NodeRefHash;
using annotation::AnnotationId;
using annotation::ReferentId;
using util::Result;
using util::Status;

/// Per-variable compiled info.
struct VarInfo {
  std::string name;
  size_t declaration_index = 0;  // first clause mentioning it
  VarKind kind = VarKind::kAny;
  std::vector<const Clause*> filters;      // single-var clauses
  std::vector<NodeRef> candidates;         // materialized candidate set
  std::unordered_set<NodeRef, NodeRefHash> candidate_set;
  bool generated = false;  // candidates computed from its own clauses
};

/// Pairwise constraint predicate between two bound variables.
struct PairPredicate {
  enum class Kind { kBefore, kDisjoint, kOverlapping, kSameDomain };
  Kind kind;
  std::string var_a;
  std::string var_b;
};

/// Edge clause between two variables, normalized.
struct EdgeInfo {
  const Clause* clause;
  std::string var_a;  // clause->var
  std::string var_b;  // clause->var2
  std::string label;  // a-graph edge label ("" for CONNECTED)
};

std::string_view EdgeLabelFor(Clause::Kind kind) {
  switch (kind) {
    case Clause::Kind::kAnnotates:
      return annotation::kEdgeAnnotates;
    case Clause::Kind::kRefersTo:
      return annotation::kEdgeRefersTo;
    case Clause::Kind::kOfObject:
      return annotation::kEdgeOfObject;
    default:
      return "";
  }
}

/// Expected kinds induced by each clause, for inference/validation.
struct KindExpectation {
  VarKind subject = VarKind::kAny;
  VarKind object = VarKind::kAny;
};

KindExpectation ExpectationFor(const Clause& c) {
  switch (c.kind) {
    case Clause::Kind::kIs:
      return {c.is_kind, VarKind::kAny};
    case Clause::Kind::kContains:
    case Clause::Kind::kXPath:
    case Clause::Kind::kCreator:
      return {VarKind::kContent, VarKind::kAny};
    case Clause::Kind::kType:
    case Clause::Kind::kDomain:
    case Clause::Kind::kOverlaps:
    case Clause::Kind::kContainedIn:
      return {VarKind::kReferent, VarKind::kAny};
    case Clause::Kind::kTerm:
    case Clause::Kind::kTermBelow:
      return {VarKind::kTerm, VarKind::kAny};
    case Clause::Kind::kTable:
      return {VarKind::kObject, VarKind::kAny};
    case Clause::Kind::kAnnotates:
      return {VarKind::kContent, VarKind::kReferent};
    case Clause::Kind::kRefersTo:
      return {VarKind::kContent, VarKind::kTerm};
    case Clause::Kind::kOfObject:
      return {VarKind::kReferent, VarKind::kObject};
    case Clause::Kind::kConnected:
      return {VarKind::kAny, VarKind::kAny};
  }
  return {};
}

Status MergeKind(VarInfo* info, VarKind kind) {
  if (kind == VarKind::kAny) return Status::OK();
  if (info->kind == VarKind::kAny) {
    info->kind = kind;
    return Status::OK();
  }
  if (info->kind != kind) {
    return Status::TypeError("variable ?" + info->name + " used with conflicting kinds");
  }
  return Status::OK();
}

}  // namespace

Result<QueryResult> Executor::ExecuteText(std::string_view query_text) const {
  GRAPHITTI_ASSIGN_OR_RETURN(Query query, ParseQuery(query_text));
  return Execute(query);
}

Result<QueryResult> Executor::Execute(const Query& query) const {
  if (ctx_.store == nullptr || ctx_.indexes == nullptr || ctx_.graph == nullptr) {
    return Status::InvalidArgument("QueryContext must provide store, indexes and graph");
  }
  const annotation::AnnotationStore& store = *ctx_.store;
  const agraph::AGraph& graph = *ctx_.graph;

  // ------------------------------------------------------------------
  // 1. Collect variables, infer kinds, split clauses into per-variable
  //    subqueries and inter-variable edges (the §II decomposition).
  // ------------------------------------------------------------------
  std::map<std::string, VarInfo> vars;
  std::vector<EdgeInfo> edges;

  auto touch = [&](const std::string& name, size_t decl) -> VarInfo* {
    auto [it, inserted] = vars.try_emplace(name);
    if (inserted) {
      it->second.name = name;
      it->second.declaration_index = decl;
    }
    return &it->second;
  };

  for (size_t i = 0; i < query.clauses.size(); ++i) {
    const Clause& c = query.clauses[i];
    VarInfo* subject = touch(c.var, i);
    KindExpectation expect = ExpectationFor(c);
    GRAPHITTI_RETURN_NOT_OK(MergeKind(subject, expect.subject));
    if (!c.var2.empty()) {
      VarInfo* object = touch(c.var2, i);
      GRAPHITTI_RETURN_NOT_OK(MergeKind(object, expect.object));
      edges.push_back({&c, c.var, c.var2, std::string(EdgeLabelFor(c.kind))});
    } else if (c.kind != Clause::Kind::kIs) {
      subject->filters.push_back(&c);
    }
  }

  for (auto& [name, info] : vars) {
    if (info.kind == VarKind::kAny) {
      return Status::InvalidArgument("cannot infer the kind of ?" + name +
                                     "; add an IS clause");
    }
  }

  // ------------------------------------------------------------------
  // 2. Materialize candidate sets per variable (the typed subqueries).
  // ------------------------------------------------------------------
  for (auto& [name, info] : vars) {
    std::vector<NodeRef> candidates;
    bool narrowed = false;

    switch (info.kind) {
      case VarKind::kContent: {
        // Start from the most selective content filter available.
        std::vector<AnnotationId> ids;
        bool have_ids = false;
        for (const Clause* c : info.filters) {
          if (c->kind == Clause::Kind::kContains) {
            std::vector<AnnotationId> found = store.SearchPhrase(c->text);
            if (!have_ids) {
              ids = std::move(found);
              have_ids = true;
            } else {
              std::vector<AnnotationId> merged;
              std::set_intersection(ids.begin(), ids.end(), found.begin(), found.end(),
                                    std::back_inserter(merged));
              ids = std::move(merged);
            }
          }
        }
        if (!have_ids) ids = store.Ids();
        // XPath filters.
        for (const Clause* c : info.filters) {
          if (c->kind != Clause::Kind::kXPath) continue;
          GRAPHITTI_ASSIGN_OR_RETURN(xml::XPathExpr expr, xml::XPathExpr::Compile(c->text));
          std::vector<AnnotationId> kept;
          for (AnnotationId id : ids) {
            const annotation::Annotation* ann = store.Get(id);
            if (ann != nullptr && ann->content.root() != nullptr &&
                expr.Matches(ann->content.root())) {
              kept.push_back(id);
            }
          }
          ids = std::move(kept);
          have_ids = true;
        }
        // CREATOR filters (dc:creator equality).
        for (const Clause* c : info.filters) {
          if (c->kind != Clause::Kind::kCreator) continue;
          std::vector<AnnotationId> kept;
          for (AnnotationId id : ids) {
            const annotation::Annotation* ann = store.Get(id);
            if (ann != nullptr && ann->dc.creator == c->text) kept.push_back(id);
          }
          ids = std::move(kept);
          have_ids = true;
        }
        for (AnnotationId id : ids) candidates.push_back(NodeRef::Content(id));
        narrowed = have_ids;
        break;
      }

      case VarKind::kReferent: {
        std::string type_filter;
        std::string domain;
        std::vector<const Clause*> windows;  // kOverlaps + kContainedIn
        for (const Clause* c : info.filters) {
          if (c->kind == Clause::Kind::kType) type_filter = c->text;
          if (c->kind == Clause::Kind::kDomain) domain = c->text;
          if (c->kind == Clause::Kind::kOverlaps || c->kind == Clause::Kind::kContainedIn) {
            windows.push_back(c);
          }
        }
        std::vector<ReferentId> ids;
        if (!windows.empty() && !domain.empty()) {
          // Index-accelerated spatial subquery. Probing with overlap
          // semantics is a superset of containment; exact semantics are
          // applied in the post-filter below.
          const Clause* probe = windows.front();
          if (probe->rect_window) {
            GRAPHITTI_ASSIGN_OR_RETURN(std::vector<spatial::RTreeEntry> hits,
                                       ctx_.indexes->QueryRegions(domain, probe->rect));
            for (const auto& h : hits) ids.push_back(h.id);
          } else {
            for (const auto& h : ctx_.indexes->QueryIntervals(domain, probe->interval)) {
              ids.push_back(h.id);
            }
          }
          narrowed = true;
        } else {
          ids = store.ReferentIds();
          narrowed = !windows.empty() || !domain.empty() || !type_filter.empty();
        }
        // Canonicalized window geometry: region referents are stored in
        // canonical coordinates, so CONTAINEDIN rect windows must be
        // transformed before comparing.
        auto rect_in_canonical = [&](const Clause* c) -> util::Result<spatial::Rect> {
          auto mapped = ctx_.indexes->coordinate_systems().ToCanonical(
              domain.empty() ? c->text : domain, c->rect);
          if (mapped.ok()) return mapped->second;
          return c->rect;  // unregistered system: compare raw
        };
        for (ReferentId id : ids) {
          const annotation::Referent* ref = store.GetReferent(id);
          if (ref == nullptr) continue;
          const substructure::Substructure& sub = ref->substructure;
          if (!domain.empty() && sub.domain() != domain) continue;
          if (!type_filter.empty() &&
              substructure::SubTypeToString(sub.type()) != type_filter) {
            continue;
          }
          bool keep = true;
          for (const Clause* w : windows) {
            if (w->rect_window) {
              if (sub.type() != substructure::SubType::kRegion) {
                keep = false;
                break;
              }
              GRAPHITTI_ASSIGN_OR_RETURN(spatial::Rect window_rect, rect_in_canonical(w));
              // Stored rects are canonical when indexed; a referent's rect
              // field holds the local coordinates, so canonicalize it too.
              auto stored = ctx_.indexes->coordinate_systems().ToCanonical(sub.domain(),
                                                                           sub.rect());
              spatial::Rect stored_rect = stored.ok() ? stored->second : sub.rect();
              bool ok_w = w->kind == Clause::Kind::kOverlaps
                              ? stored_rect.Overlaps(window_rect)
                              : window_rect.Contains(stored_rect);
              if (!ok_w) {
                keep = false;
                break;
              }
            } else {
              if (sub.type() != substructure::SubType::kInterval) {
                keep = false;
                break;
              }
              bool ok_w = w->kind == Clause::Kind::kOverlaps
                              ? sub.interval().Overlaps(w->interval)
                              : w->interval.Contains(sub.interval());
              if (!ok_w) {
                keep = false;
                break;
              }
            }
          }
          if (!keep) continue;
          candidates.push_back(NodeRef::Referent(id));
        }
        break;
      }

      case VarKind::kTerm: {
        bool exact_only = true;
        std::vector<std::string> wanted;
        for (const Clause* c : info.filters) {
          if (c->kind == Clause::Kind::kTerm) {
            wanted.push_back(c->text);
          } else if (c->kind == Clause::Kind::kTermBelow) {
            exact_only = false;
            if (ctx_.ontologies == nullptr) {
              return Status::Unsupported("TERM BELOW requires an ontology resolver");
            }
            for (const std::string& q : ctx_.ontologies->ExpandTermBelow(c->text)) {
              wanted.push_back(q);
            }
          }
        }
        (void)exact_only;
        if (wanted.empty()) {
          candidates = graph.NodesOfKind(NodeKind::kOntologyTerm);
        } else {
          narrowed = true;
          for (const std::string& q : wanted) {
            auto node = store.FindTermNode(q);
            if (node.ok()) candidates.push_back(*node);
          }
        }
        break;
      }

      case VarKind::kObject: {
        const Clause* table_clause = nullptr;
        for (const Clause* c : info.filters) {
          if (c->kind == Clause::Kind::kTable) table_clause = c;
        }
        if (table_clause != nullptr) {
          if (ctx_.objects == nullptr) {
            return Status::Unsupported("TABLE clauses require an object resolver");
          }
          GRAPHITTI_ASSIGN_OR_RETURN(
              std::vector<uint64_t> ids,
              ctx_.objects->FindObjects(table_clause->text, table_clause->table_filter));
          for (uint64_t id : ids) candidates.push_back(NodeRef::Object(id));
          narrowed = true;
        } else {
          candidates = graph.NodesOfKind(NodeKind::kDataObject);
        }
        break;
      }

      case VarKind::kAny:
        return Status::Internal("unreachable: unresolved kind");
    }

    std::sort(candidates.begin(), candidates.end());
    candidates.erase(std::unique(candidates.begin(), candidates.end()), candidates.end());
    info.candidates = std::move(candidates);
    info.candidate_set.insert(info.candidates.begin(), info.candidates.end());
    info.generated = narrowed;
  }

  // ------------------------------------------------------------------
  // 3. Decompose constraints into pairwise predicates.
  // ------------------------------------------------------------------
  std::vector<PairPredicate> pair_preds;
  for (const Constraint& cons : query.constraints) {
    for (const std::string& v : cons.vars) {
      auto it = vars.find(v);
      if (it == vars.end()) {
        return Status::InvalidArgument("constraint references unknown variable ?" + v);
      }
      if (it->second.kind != VarKind::kReferent) {
        return Status::TypeError("constraints apply to referent variables (?" + v + ")");
      }
    }
    switch (cons.kind) {
      case Constraint::Kind::kConsecutive:
        for (size_t i = 0; i + 1 < cons.vars.size(); ++i) {
          pair_preds.push_back({PairPredicate::Kind::kBefore, cons.vars[i], cons.vars[i + 1]});
          pair_preds.push_back(
              {PairPredicate::Kind::kSameDomain, cons.vars[i], cons.vars[i + 1]});
        }
        break;
      case Constraint::Kind::kDisjoint:
        for (size_t i = 0; i < cons.vars.size(); ++i) {
          for (size_t j = i + 1; j < cons.vars.size(); ++j) {
            pair_preds.push_back({PairPredicate::Kind::kDisjoint, cons.vars[i], cons.vars[j]});
          }
        }
        break;
      case Constraint::Kind::kOverlapping:
        for (size_t i = 0; i < cons.vars.size(); ++i) {
          for (size_t j = i + 1; j < cons.vars.size(); ++j) {
            pair_preds.push_back(
                {PairPredicate::Kind::kOverlapping, cons.vars[i], cons.vars[j]});
          }
        }
        break;
      case Constraint::Kind::kSameDomain:
        for (size_t i = 0; i + 1 < cons.vars.size(); ++i) {
          pair_preds.push_back(
              {PairPredicate::Kind::kSameDomain, cons.vars[i], cons.vars[i + 1]});
        }
        break;
    }
  }

  auto eval_pair = [&](const PairPredicate& p, NodeRef a, NodeRef b) -> bool {
    const annotation::Referent* ra = store.GetReferent(a.id);
    const annotation::Referent* rb = store.GetReferent(b.id);
    if (ra == nullptr || rb == nullptr) return false;
    const substructure::Substructure& sa = ra->substructure;
    const substructure::Substructure& sb = rb->substructure;
    switch (p.kind) {
      case PairPredicate::Kind::kSameDomain:
        return sa.domain() == sb.domain() && sa.type() == sb.type();
      case PairPredicate::Kind::kBefore:
        if (sa.type() != substructure::SubType::kInterval ||
            sb.type() != substructure::SubType::kInterval) {
          return false;
        }
        return sa.interval().lo < sb.interval().lo;
      case PairPredicate::Kind::kDisjoint: {
        auto overlap = substructure::IfOverlap(sa, sb);
        return overlap.ok() && !*overlap;
      }
      case PairPredicate::Kind::kOverlapping: {
        auto overlap = substructure::IfOverlap(sa, sb);
        return overlap.ok() && *overlap;
      }
    }
    return false;
  };

  // ------------------------------------------------------------------
  // 4. Feasible order: bind variables most-selective-first, preferring
  //    variables connected to already-bound ones (joinable via a-graph).
  // ------------------------------------------------------------------
  std::vector<std::string> order;
  {
    std::set<std::string> remaining;
    for (const auto& [name, _] : vars) remaining.insert(name);

    auto connected_to_bound = [&](const std::string& v,
                                  const std::set<std::string>& bound) {
      for (const EdgeInfo& e : edges) {
        if ((e.var_a == v && bound.count(e.var_b) > 0) ||
            (e.var_b == v && bound.count(e.var_a) > 0)) {
          return true;
        }
      }
      return false;
    };

    std::set<std::string> bound;
    if (options_.use_selectivity_order) {
      while (!remaining.empty()) {
        std::string best;
        size_t best_size = SIZE_MAX;
        bool best_connected = false;
        for (const std::string& v : remaining) {
          bool conn = connected_to_bound(v, bound);
          size_t size = vars[v].candidates.size();
          // Prefer connected variables; among equals, smaller candidate set.
          if (std::make_tuple(!conn, size) < std::make_tuple(!best_connected, best_size) ||
              best.empty()) {
            best = v;
            best_size = size;
            best_connected = conn;
          }
        }
        order.push_back(best);
        bound.insert(best);
        remaining.erase(best);
      }
    } else {
      // Naive: declaration order.
      std::vector<std::string> decl(remaining.begin(), remaining.end());
      std::sort(decl.begin(), decl.end(), [&](const std::string& a, const std::string& b) {
        return vars[a].declaration_index < vars[b].declaration_index;
      });
      order = std::move(decl);
    }
  }

  // ------------------------------------------------------------------
  // 5. Execute the join: a binding table over `order`.
  // ------------------------------------------------------------------
  QueryResult result;
  result.target = query.target;
  ExecutionStats& stats = result.stats;

  std::map<std::string, size_t> var_column;
  std::vector<std::vector<NodeRef>> rows;  // each row: one NodeRef per bound column
  rows.emplace_back();                     // seed: single empty row

  // Buffers reused across every clause evaluation and row extension: the
  // join machinery below is hash-based (semi-joins over NodeRef keys via
  // NodeRefHash), so per-row work allocates nothing in steady state.
  std::vector<NodeRef> domain_buf;
  std::vector<NodeRef> nbr_buf;
  std::unordered_set<NodeRef, NodeRefHash> nbr_set;

  for (const std::string& v : order) {
    VarInfo& info = vars[v];
    stats.binding_order.push_back(v);
    stats.candidate_counts.push_back(info.candidates.size());

    // Edges from v to already-bound variables, with the bound column
    // resolved once per variable instead of per row.
    std::vector<std::pair<const EdgeInfo*, size_t>> join_edges;
    std::vector<std::pair<const EdgeInfo*, size_t>> path_edges;  // CONNECTED joins
    for (const EdgeInfo& e : edges) {
      const std::string& other = (e.var_a == v) ? e.var_b : (e.var_b == v ? e.var_a : "");
      if (other.empty()) continue;
      auto col = var_column.find(other);
      if (col == var_column.end()) continue;
      if (e.clause->kind == Clause::Kind::kConnected) {
        path_edges.emplace_back(&e, col->second);
      } else {
        join_edges.emplace_back(&e, col->second);
      }
    }

    std::vector<std::vector<NodeRef>> next_rows;
    for (const std::vector<NodeRef>& row : rows) {
      const std::vector<NodeRef>* domain = &info.candidates;  // cartesian extension
      if (!join_edges.empty()) {
        // Expand along the first edge (hash-filtered against v's candidate
        // set), then hash semi-join along the rest.
        bool first = true;
        for (const auto& [e, col] : join_edges) {
          NodeRef bound_node = row[col];
          nbr_buf.clear();
          graph.AppendNeighbors(bound_node, /*directed=*/false, e->label, &nbr_buf);
          if (first) {
            domain_buf.clear();
            for (NodeRef n : nbr_buf) {
              if (info.candidate_set.count(n) > 0) domain_buf.push_back(n);
            }
            first = false;
          } else {
            nbr_set.clear();
            nbr_set.insert(nbr_buf.begin(), nbr_buf.end());
            domain_buf.erase(std::remove_if(domain_buf.begin(), domain_buf.end(),
                                            [&](NodeRef n) {
                                              return nbr_set.count(n) == 0;
                                            }),
                             domain_buf.end());
          }
          if (domain_buf.empty()) break;
        }
        // Deterministic extension order (and the order the seed produced).
        std::sort(domain_buf.begin(), domain_buf.end());
        domain = &domain_buf;
      }

      for (NodeRef cand : *domain) {
        // Pairwise constraints that become fully bound with v = cand.
        bool ok = true;
        for (const PairPredicate& p : pair_preds) {
          const std::string* other = nullptr;
          bool v_is_a = false;
          if (p.var_a == v) {
            other = &p.var_b;
            v_is_a = true;
          } else if (p.var_b == v) {
            other = &p.var_a;
          } else {
            continue;
          }
          auto it = var_column.find(*other);
          if (it == var_column.end()) continue;  // other not bound yet
          NodeRef other_node = row[it->second];
          NodeRef a = v_is_a ? cand : other_node;
          NodeRef b = v_is_a ? other_node : cand;
          if (!eval_pair(p, a, b)) {
            ok = false;
            break;
          }
        }
        if (!ok) continue;
        // CONNECTED joins: path existence in the a-graph.
        for (const auto& [e, col] : path_edges) {
          NodeRef other_node = row[col];
          agraph::PathOptions popt;
          popt.max_hops = e->clause->max_hops == SIZE_MAX ? options_.default_connected_hops
                                                          : e->clause->max_hops;
          if (!graph.FindPath(cand, other_node, popt).ok()) {
            ok = false;
            break;
          }
        }
        if (!ok) continue;

        std::vector<NodeRef> extended = row;
        extended.push_back(cand);
        next_rows.push_back(std::move(extended));
        if (next_rows.size() > options_.max_intermediate_rows) {
          return Status::OutOfRange("query exceeded max_intermediate_rows (" +
                                    std::to_string(options_.max_intermediate_rows) + ")");
        }
      }
    }
    var_column[v] = var_column.size();
    rows = std::move(next_rows);
    stats.rows_examined += rows.size();
    if (rows.empty()) break;
  }

  // ------------------------------------------------------------------
  // 6. Collate results per target.
  // ------------------------------------------------------------------
  std::string target_var = query.target_var;
  if (target_var.empty()) {
    if (query.target == Target::kCount) {
      // COUNT defaults to the first declared variable of any kind.
      size_t best_decl = SIZE_MAX;
      for (const auto& [name, info] : vars) {
        if (info.declaration_index < best_decl) {
          best_decl = info.declaration_index;
          target_var = name;
        }
      }
    } else if (query.target != Target::kGraph) {
      // kGraph keeps "" (all variables participate).
      VarKind want = VarKind::kContent;
      if (query.target == Target::kReferents) want = VarKind::kReferent;
      size_t best_decl = SIZE_MAX;
      for (const auto& [name, info] : vars) {
        if (info.kind == want && info.declaration_index < best_decl) {
          best_decl = info.declaration_index;
          target_var = name;
        }
      }
      if (target_var.empty()) {
        return Status::InvalidArgument("no variable of the result kind in WHERE block");
      }
    }
  } else if (vars.find(target_var) == vars.end()) {
    return Status::InvalidArgument("unknown target variable ?" + target_var);
  }

  auto label_for = [&](NodeRef n) { return std::string(graph.NodeLabel(n)); };

  switch (query.target) {
    case Target::kContents: {
      std::unordered_set<NodeRef, NodeRefHash> seen;
      size_t col = var_column.count(target_var) ? var_column[target_var] : SIZE_MAX;
      for (const auto& row : rows) {
        if (col == SIZE_MAX || col >= row.size()) break;
        NodeRef n = row[col];
        if (!seen.insert(n).second) continue;
        ResultItem item;
        item.content_id = n.id;
        item.label = label_for(n);
        result.items.push_back(std::move(item));
      }
      break;
    }
    case Target::kReferents: {
      std::unordered_set<NodeRef, NodeRefHash> seen;
      size_t col = var_column.count(target_var) ? var_column[target_var] : SIZE_MAX;
      for (const auto& row : rows) {
        if (col == SIZE_MAX || col >= row.size()) break;
        NodeRef n = row[col];
        if (!seen.insert(n).second) continue;
        ResultItem item;
        item.referent_id = n.id;
        const annotation::Referent* ref = store.GetReferent(n.id);
        if (ref != nullptr) item.substructure = ref->substructure;
        item.label = label_for(n);
        result.items.push_back(std::move(item));
      }
      break;
    }
    case Target::kFragments: {
      GRAPHITTI_ASSIGN_OR_RETURN(xml::XPathExpr expr,
                                 xml::XPathExpr::Compile(query.return_xpath));
      std::unordered_set<NodeRef, NodeRefHash> seen;
      size_t col = var_column.count(target_var) ? var_column[target_var] : SIZE_MAX;
      for (const auto& row : rows) {
        if (col == SIZE_MAX || col >= row.size()) break;
        NodeRef n = row[col];
        if (!seen.insert(n).second) continue;
        const annotation::Annotation* ann = store.Get(n.id);
        if (ann == nullptr || ann->content.root() == nullptr) continue;
        for (const xml::XPathMatch& m : expr.Evaluate(ann->content.root())) {
          ResultItem item;
          item.content_id = n.id;
          item.fragment = m.is_attribute ? m.value : m.node->ToString(/*pretty=*/false);
          item.label = label_for(n);
          result.items.push_back(std::move(item));
        }
      }
      break;
    }
    case Target::kCount: {
      std::unordered_set<NodeRef, NodeRefHash> distinct;
      size_t col = var_column.count(target_var) ? var_column[target_var] : SIZE_MAX;
      for (const auto& row : rows) {
        if (col == SIZE_MAX || col >= row.size()) break;
        distinct.insert(row[col]);
      }
      ResultItem item;
      item.count = distinct.size();
      item.label = "count(?" + target_var + ") = " + std::to_string(distinct.size());
      result.items.push_back(std::move(item));
      break;
    }
    case Target::kGraph: {
      // One connection subgraph per distinct binding row ("each connected
      // subgraph forms a result page", §III).
      std::set<std::vector<NodeRef>> seen;
      for (const auto& row : rows) {
        std::vector<NodeRef> terminals = row;
        std::sort(terminals.begin(), terminals.end());
        terminals.erase(std::unique(terminals.begin(), terminals.end()), terminals.end());
        if (!seen.insert(terminals).second) continue;
        auto sg = graph.Connect(terminals);
        if (!sg.ok()) continue;  // disconnected rows yield no subgraph
        ResultItem item;
        item.subgraph = std::move(sg).ValueUnsafe();
        item.label = "subgraph(" + std::to_string(item.subgraph.nodes.size()) + " nodes)";
        result.items.push_back(std::move(item));
      }
      break;
    }
  }

  stats.items_produced = result.items.size();

  // ------------------------------------------------------------------
  // 7. Paging.
  // ------------------------------------------------------------------
  size_t page_size = query.limit;
  if (page_size == SIZE_MAX) {
    page_size = (query.target == Target::kGraph) ? 1 : result.items.size();
  }
  if (page_size == 0) page_size = 1;
  result.page_size = page_size;
  result.total_pages =
      result.items.empty() ? 1 : (result.items.size() + page_size - 1) / page_size;
  result.page = std::min(query.page, result.total_pages);
  size_t begin = (result.page - 1) * page_size;
  size_t end = std::min(result.items.size(), begin + page_size);
  for (size_t i = begin; i < end; ++i) result.page_items.push_back(result.items[i]);
  return result;
}

Result<std::string> Executor::Explain(const Query& query) const {
  GRAPHITTI_ASSIGN_OR_RETURN(QueryResult result, Execute(query));
  std::string out;
  out += "query: " + query.ToString() + "\n";
  out += "plan (" + std::string(options_.use_selectivity_order ? "feasible order"
                                                               : "declaration order") +
         "):\n";
  for (size_t i = 0; i < result.stats.binding_order.size(); ++i) {
    out += "  " + std::to_string(i + 1) + ". bind ?" + result.stats.binding_order[i] +
           "  (candidates: " + std::to_string(result.stats.candidate_counts[i]) + ")\n";
  }
  out += "rows examined: " + std::to_string(result.stats.rows_examined) + "\n";
  out += "items produced: " + std::to_string(result.stats.items_produced) + "\n";
  out += "pages: " + std::to_string(result.total_pages) +
         " (page size " + std::to_string(result.page_size) + ")\n";
  return out;
}

Result<std::string> Executor::ExplainText(std::string_view query_text) const {
  GRAPHITTI_ASSIGN_OR_RETURN(Query query, ParseQuery(query_text));
  return Explain(query);
}

}  // namespace query
}  // namespace graphitti
