#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "ontology/obo_parser.h"
#include "ontology/ontology.h"
#include "util/random.h"

namespace graphitti {
namespace ontology {
namespace {

// Builds the running example:
//           cell (C0)
//          /        |
//    neuron (C1)   glia (C2)
//      /     |         |
//  motor(C3) sensory(C4) astro(C5)
// instances: I0,I1 of motor; I2 of sensory; I3 of astro; I4 of glia
// plus part_of: axon (C6) part_of neuron
struct Fixture {
  Ontology onto{"test"};
  TermId cell, neuron, glia, motor, sensory, astro, axon;
  TermId i0, i1, i2, i3, i4;
  RelationId is_a, instance_of, part_of;

  Fixture() {
    is_a = onto.AddRelationType("is_a");
    instance_of = onto.AddRelationType("instance_of");
    part_of = onto.AddRelationType("part_of", Quantifier::kAll);
    cell = *onto.AddTerm("C0", "cell");
    neuron = *onto.AddTerm("C1", "neuron");
    glia = *onto.AddTerm("C2", "glia");
    motor = *onto.AddTerm("C3", "motor neuron");
    sensory = *onto.AddTerm("C4", "sensory neuron");
    astro = *onto.AddTerm("C5", "astrocyte");
    axon = *onto.AddTerm("C6", "axon");
    EXPECT_TRUE(onto.AddEdge(neuron, cell, is_a).ok());
    EXPECT_TRUE(onto.AddEdge(glia, cell, is_a).ok());
    EXPECT_TRUE(onto.AddEdge(motor, neuron, is_a).ok());
    EXPECT_TRUE(onto.AddEdge(sensory, neuron, is_a).ok());
    EXPECT_TRUE(onto.AddEdge(astro, glia, is_a).ok());
    EXPECT_TRUE(onto.AddEdge(axon, neuron, part_of).ok());
    i0 = *onto.AddInstance("I0", "cell-1");
    i1 = *onto.AddInstance("I1", "cell-2");
    i2 = *onto.AddInstance("I2", "cell-3");
    i3 = *onto.AddInstance("I3", "cell-4");
    i4 = *onto.AddInstance("I4", "cell-5");
    EXPECT_TRUE(onto.AddEdge(i0, motor, instance_of).ok());
    EXPECT_TRUE(onto.AddEdge(i1, motor, instance_of).ok());
    EXPECT_TRUE(onto.AddEdge(i2, sensory, instance_of).ok());
    EXPECT_TRUE(onto.AddEdge(i3, astro, instance_of).ok());
    EXPECT_TRUE(onto.AddEdge(i4, glia, instance_of).ok());
  }
};

TEST(OntologyTest, ConstructionAndLookup) {
  Fixture f;
  EXPECT_EQ(f.onto.num_terms(), 12u);
  EXPECT_EQ(f.onto.num_edges(), 11u);
  EXPECT_EQ(f.onto.FindTerm("C1"), f.neuron);
  EXPECT_EQ(f.onto.FindTerm("nope"), kInvalidTerm);
  EXPECT_EQ(f.onto.FindRelation("is_a"), f.is_a);
  EXPECT_EQ(f.onto.FindRelation("nope"), kInvalidRelation);
  EXPECT_TRUE(f.onto.term(f.i0).is_instance);
  EXPECT_FALSE(f.onto.term(f.neuron).is_instance);
  EXPECT_EQ(f.onto.relation(f.part_of).quantifier, Quantifier::kAll);
}

TEST(OntologyTest, DuplicatesAndBadEdges) {
  Fixture f;
  EXPECT_TRUE(f.onto.AddTerm("C0", "dup").status().IsAlreadyExists());
  EXPECT_TRUE(f.onto.AddTerm("", "x").status().IsInvalidArgument());
  EXPECT_TRUE(f.onto.AddEdge(f.cell, 999, f.is_a).IsInvalidArgument());
  EXPECT_TRUE(f.onto.AddEdge(f.cell, f.cell, f.is_a).IsInvalidArgument());
  EXPECT_TRUE(f.onto.AddEdge(f.cell, f.neuron, 999).IsInvalidArgument());
  // AddRelationType is idempotent.
  EXPECT_EQ(f.onto.AddRelationType("is_a"), f.is_a);
}

TEST(OntologyTest, ParentsAndChildren) {
  Fixture f;
  EXPECT_EQ(f.onto.Parents(f.motor, f.is_a), (std::vector<TermId>{f.neuron}));
  auto kids = f.onto.Children(f.neuron, f.is_a);
  std::sort(kids.begin(), kids.end());
  EXPECT_EQ(kids, (std::vector<TermId>{f.motor, f.sensory}));
  // Any-relation children of neuron include the part_of axon.
  auto all_kids = f.onto.Children(f.neuron);
  EXPECT_EQ(all_kids.size(), 3u);
}

TEST(OntologyTest, CIReturnsTransitiveInstances) {
  Fixture f;
  // CI(cell): every instance below cell.
  auto all = f.onto.CI(f.cell);
  EXPECT_EQ(all, (std::vector<TermId>{f.i0, f.i1, f.i2, f.i3, f.i4}));
  // CI(neuron): only neuron instances.
  EXPECT_EQ(f.onto.CI(f.neuron), (std::vector<TermId>{f.i0, f.i1, f.i2}));
  // CI(motor): direct only.
  EXPECT_EQ(f.onto.CI(f.motor), (std::vector<TermId>{f.i0, f.i1}));
  // CI of a leaf with no instances.
  EXPECT_TRUE(f.onto.CI(f.axon).empty());
}

TEST(OntologyTest, CRIRestrictsToOneRelation) {
  Fixture f;
  // Only instance_of edges: direct instances of glia (not astro's).
  EXPECT_EQ(f.onto.CRI(f.glia, f.instance_of), (std::vector<TermId>{f.i4}));
  // is_a only: no instances reachable without instance_of.
  EXPECT_TRUE(f.onto.CRI(f.glia, f.is_a).empty());
}

TEST(OntologyTest, CmRIUsesRelationSet) {
  Fixture f;
  auto got = f.onto.CmRI(f.glia, {f.is_a, f.instance_of});
  EXPECT_EQ(got, (std::vector<TermId>{f.i3, f.i4}));
}

TEST(OntologyTest, mCmRIUnionsConcepts) {
  Fixture f;
  auto got = f.onto.mCmRI({f.motor, f.astro}, {f.is_a, f.instance_of});
  EXPECT_EQ(got, (std::vector<TermId>{f.i0, f.i1, f.i3}));
  EXPECT_TRUE(f.onto.mCmRI({}, {f.is_a}).empty());
}

TEST(OntologyTest, SubTreeIncludesRootAndDescendants) {
  Fixture f;
  auto sub = f.onto.SubTree(f.neuron, f.is_a);
  EXPECT_EQ(sub, (std::vector<TermId>{f.neuron, f.motor, f.sensory}));
  // part_of subtree of neuron contains the axon.
  auto parts = f.onto.SubTree(f.neuron, f.part_of);
  EXPECT_EQ(parts, (std::vector<TermId>{f.neuron, f.axon}));
}

TEST(OntologyTest, SubTreeDiff) {
  Fixture f;
  auto diff = f.onto.SubTreeDiff(f.cell, f.neuron, f.is_a);
  ASSERT_TRUE(diff.ok());
  EXPECT_EQ(*diff, (std::vector<TermId>{f.cell, f.glia, f.astro}));
  // y must be a descendant of x.
  EXPECT_TRUE(f.onto.SubTreeDiff(f.neuron, f.glia, f.is_a).status().IsInvalidArgument());
  EXPECT_TRUE(f.onto.SubTreeDiff(f.cell, 999, f.is_a).status().IsInvalidArgument());
}

TEST(OntologyTest, IsDescendant) {
  Fixture f;
  EXPECT_TRUE(f.onto.IsDescendant(f.motor, f.cell, f.is_a));
  EXPECT_TRUE(f.onto.IsDescendant(f.motor, f.neuron, f.is_a));
  EXPECT_FALSE(f.onto.IsDescendant(f.motor, f.glia, f.is_a));
  EXPECT_FALSE(f.onto.IsDescendant(f.cell, f.cell, f.is_a));
  // Not a descendant via the wrong relation.
  EXPECT_FALSE(f.onto.IsDescendant(f.axon, f.neuron, f.is_a));
  EXPECT_TRUE(f.onto.IsDescendant(f.axon, f.neuron, f.part_of));
}

TEST(OntologyTest, DagSharedDescendants) {
  // A term with two parents (diamond) is visited once.
  Ontology onto("dag");
  RelationId is_a = onto.AddRelationType("is_a");
  TermId top = *onto.AddTerm("T", "top");
  TermId left = *onto.AddTerm("L", "left");
  TermId right = *onto.AddTerm("R", "right");
  TermId bottom = *onto.AddTerm("B", "bottom");
  ASSERT_TRUE(onto.AddEdge(left, top, is_a).ok());
  ASSERT_TRUE(onto.AddEdge(right, top, is_a).ok());
  ASSERT_TRUE(onto.AddEdge(bottom, left, is_a).ok());
  ASSERT_TRUE(onto.AddEdge(bottom, right, is_a).ok());
  auto sub = onto.SubTree(top, is_a);
  EXPECT_EQ(sub.size(), 4u);
}

// Property test: ops vs brute-force reachability on random ontologies.
class OntologyPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(OntologyPropertyTest, SubTreeMatchesBruteForce) {
  util::Rng rng(GetParam());
  Ontology onto("rand");
  RelationId rel_a = onto.AddRelationType("is_a");
  RelationId rel_b = onto.AddRelationType("part_of");

  const size_t n = 60;
  std::vector<TermId> terms;
  for (size_t i = 0; i < n; ++i) {
    terms.push_back(*onto.AddTerm("T" + std::to_string(i), ""));
  }
  // Random DAG edges from higher index to lower (acyclic by construction).
  std::vector<std::tuple<TermId, TermId, RelationId>> edge_list;
  for (size_t i = 1; i < n; ++i) {
    size_t parents = 1 + static_cast<size_t>(rng.Uniform(0, 1));
    for (size_t p = 0; p < parents; ++p) {
      TermId parent = terms[static_cast<size_t>(rng.Uniform(0, static_cast<int64_t>(i) - 1))];
      RelationId rel = rng.NextBool() ? rel_a : rel_b;
      ASSERT_TRUE(onto.AddEdge(terms[i], parent, rel).ok());
      edge_list.emplace_back(terms[i], parent, rel);
    }
  }

  // Brute-force descendant computation for a sample of roots.
  for (int probe = 0; probe < 10; ++probe) {
    TermId root = terms[static_cast<size_t>(rng.Uniform(0, static_cast<int64_t>(n) - 1))];
    RelationId rel = rng.NextBool() ? rel_a : rel_b;

    std::set<TermId> expected{root};
    bool changed = true;
    while (changed) {
      changed = false;
      for (const auto& [src, dst, r] : edge_list) {
        if (r == rel && expected.count(dst) > 0 && expected.count(src) == 0) {
          expected.insert(src);
          changed = true;
        }
      }
    }
    std::vector<TermId> expected_vec(expected.begin(), expected.end());
    EXPECT_EQ(onto.SubTree(root, rel), expected_vec) << "root T" << root;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, OntologyPropertyTest, ::testing::Values(5, 19, 83, 311));

// --- OBO parsing ---

constexpr const char* kObo = R"(! test ontology
[Term]
id: GO:0001
name: cell

[Term]
id: GO:0002
name: neuron
is_a: GO:0001

[Term]
id: GO:0003
name: axon
relationship: part_of GO:0002

[Instance]
id: INST:1
name: specimen-1
instance_of: GO:0002
)";

TEST(OboParserTest, ParsesTermsInstancesAndEdges) {
  auto onto = ParseObo(kObo, "go-lite");
  ASSERT_TRUE(onto.ok()) << onto.status().ToString();
  EXPECT_EQ(onto->name(), "go-lite");
  EXPECT_EQ(onto->num_terms(), 4u);
  EXPECT_EQ(onto->num_edges(), 3u);

  TermId cell = onto->FindTerm("GO:0001");
  TermId neuron = onto->FindTerm("GO:0002");
  TermId inst = onto->FindTerm("INST:1");
  ASSERT_NE(cell, kInvalidTerm);
  EXPECT_EQ(onto->term(neuron).label, "neuron");
  EXPECT_TRUE(onto->term(inst).is_instance);

  RelationId is_a = onto->FindRelation("is_a");
  EXPECT_EQ(onto->Parents(neuron, is_a), (std::vector<TermId>{cell}));
  EXPECT_EQ(onto->CI(cell), (std::vector<TermId>{inst}));
}

TEST(OboParserTest, RoundTripsThroughToObo) {
  auto onto = ParseObo(kObo);
  ASSERT_TRUE(onto.ok());
  std::string dumped = ToObo(*onto);
  auto reparsed = ParseObo(dumped);
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString() << "\n" << dumped;
  EXPECT_EQ(reparsed->num_terms(), onto->num_terms());
  EXPECT_EQ(reparsed->num_edges(), onto->num_edges());
  EXPECT_EQ(reparsed->CI(reparsed->FindTerm("GO:0001")).size(), 1u);
}

TEST(OboParserTest, Errors) {
  EXPECT_TRUE(ParseObo("[Term]\nname: no id\n").status().IsParseError());
  EXPECT_TRUE(ParseObo("[Term]\nid: A\nis_a: MISSING\n").status().IsParseError());
  EXPECT_TRUE(ParseObo("[Term]\nid: A\nrelationship: broken\n").status().IsParseError());
  EXPECT_TRUE(ParseObo("[Term]\nid: A\ngarbage line\n").status().IsParseError());
  EXPECT_TRUE(ParseObo("[Term]\nid: A\n\n[Term]\nid: A\n").status().IsAlreadyExists());
}

TEST(OboParserTest, UnknownStanzasAndTagsSkipped) {
  auto onto = ParseObo("[Typedef]\nid: part_of\n\n[Term]\nid: A\nxref: ignored\n");
  ASSERT_TRUE(onto.ok()) << onto.status().ToString();
  EXPECT_EQ(onto->num_terms(), 1u);
}

}  // namespace
}  // namespace ontology
}  // namespace graphitti
