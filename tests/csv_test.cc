#include <gtest/gtest.h>

#include "relational/csv.h"

namespace graphitti {
namespace relational {
namespace {

Schema TestSchema() {
  return SchemaBuilder().Str("name", false).Int("count").Real("score").Blob("raw").Build();
}

TEST(CsvRecordTest, SimpleFields) {
  auto r = ParseCsvRecord("a,b,c");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, (std::vector<std::string>{"a", "b", "c"}));
}

TEST(CsvRecordTest, QuotedFields) {
  auto r = ParseCsvRecord(R"(plain,"has,comma","has ""quote""","multi
line")");
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->size(), 4u);
  EXPECT_EQ((*r)[1], "has,comma");
  EXPECT_EQ((*r)[2], "has \"quote\"");
  EXPECT_EQ((*r)[3], "multi\nline");
}

TEST(CsvRecordTest, EmptyFieldsAndCustomDelimiter) {
  auto r = ParseCsvRecord("a;;c", ';');
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(ParseCsvRecord("")->size(), 1u);
}

TEST(CsvRecordTest, Errors) {
  EXPECT_TRUE(ParseCsvRecord("\"unterminated").status().IsParseError());
  EXPECT_TRUE(ParseCsvRecord("ab\"cd\"").status().IsParseError());
}

TEST(CsvTest, ExportBasics) {
  Table t("t", TestSchema());
  ASSERT_TRUE(
      t.Insert({Value::Str("alpha"), Value::Int(3), Value::Real(0.5), Value::Blob({0xab})})
          .ok());
  ASSERT_TRUE(t.Insert({Value::Str("with,comma"), Value::Null(), Value::Null(),
                        Value::Null()})
                  .ok());
  std::string csv = ExportCsv(t);
  EXPECT_EQ(csv,
            "name,count,score,raw\n"
            "alpha,3,0.5,0xab\n"
            "\"with,comma\",,,\n");
}

TEST(CsvTest, ImportRoundTrip) {
  Table src("src", TestSchema());
  ASSERT_TRUE(src.Insert({Value::Str("a \"quoted\" name"), Value::Int(-7),
                          Value::Real(2.25), Value::Blob({1, 2, 255})})
                  .ok());
  ASSERT_TRUE(
      src.Insert({Value::Str("line\nbreak"), Value::Int(0), Value::Null(), Value::Null()})
          .ok());
  std::string csv = ExportCsv(src);

  Table dst("dst", TestSchema());
  auto n = ImportCsv(&dst, csv);
  ASSERT_TRUE(n.ok()) << n.status().ToString();
  EXPECT_EQ(*n, 2u);
  EXPECT_EQ(dst.GetCell(0, "name").as_string(), "a \"quoted\" name");
  EXPECT_EQ(dst.GetCell(0, "count").as_int(), -7);
  EXPECT_EQ(dst.GetCell(0, "raw").as_bytes(), (std::vector<uint8_t>{1, 2, 255}));
  EXPECT_EQ(dst.GetCell(1, "name").as_string(), "line\nbreak");
  EXPECT_TRUE(dst.GetCell(1, "score").is_null());
}

TEST(CsvTest, ImportValidatesHeader) {
  Table t("t", TestSchema());
  EXPECT_TRUE(ImportCsv(&t, "wrong,header,row,here\na,1,2,0x00\n").status().IsParseError());
  EXPECT_TRUE(ImportCsv(&t, "name,count\na,1\n").status().IsParseError());
  EXPECT_TRUE(ImportCsv(&t, "").status().IsParseError());
  // Headerless import works when disabled.
  CsvOptions no_header;
  no_header.header = false;
  auto n = ImportCsv(&t, "x,1,0.5,0xff\n", no_header);
  ASSERT_TRUE(n.ok()) << n.status().ToString();
  EXPECT_EQ(*n, 1u);
}

TEST(CsvTest, ImportTypeErrors) {
  Table t("t", TestSchema());
  EXPECT_TRUE(
      ImportCsv(&t, "name,count,score,raw\nx,notanum,0.5,0x00\n").status().IsParseError());
  EXPECT_TRUE(
      ImportCsv(&t, "name,count,score,raw\nx,1,bad,0x00\n").status().IsParseError());
  EXPECT_TRUE(
      ImportCsv(&t, "name,count,score,raw\nx,1,0.5,zz\n").status().IsParseError());
  EXPECT_TRUE(
      ImportCsv(&t, "name,count,score,raw\nx,1,0.5,0xg0\n").status().IsParseError());
  // Arity mismatch.
  EXPECT_TRUE(ImportCsv(&t, "name,count,score,raw\nx,1\n").status().IsParseError());
  // Null in non-nullable column -> schema validation error.
  EXPECT_TRUE(ImportCsv(&t, "name,count,score,raw\n,1,0.5,0x00\n")
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(ImportCsv(nullptr, "x").status().IsInvalidArgument());
}

TEST(CsvTest, SkipsBlankLines) {
  Table t("t", TestSchema());
  auto n = ImportCsv(&t, "name,count,score,raw\n\nx,1,0.5,0x00\n\n");
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 1u);
}

TEST(CsvTest, DoublePrecisionSurvives) {
  Table src("src", SchemaBuilder().Real("v").Build());
  ASSERT_TRUE(src.Insert({Value::Real(0.1 + 0.2)}).ok());
  Table dst("dst", SchemaBuilder().Real("v").Build());
  ASSERT_TRUE(ImportCsv(&dst, ExportCsv(src)).ok());
  EXPECT_DOUBLE_EQ(dst.GetCell(0, "v").as_double(), 0.1 + 0.2);
}

}  // namespace
}  // namespace relational
}  // namespace graphitti
