// Crash-safe durability for a Graphitti instance: WAL record payloads,
// binary snapshot body encode/restore, recovery, and checkpointing.
//
// Division of labor with src/persist/: persist owns the file-level
// protocol (record framing + CRCs, atomic snapshot writes, generation
// planning) and knows nothing about engine state; this file owns the
// engine-state encodings layered on top.
//
// Snapshot body layout (framed + checksummed by persist/snapshot.cc):
//   coordinate systems (canonical-first), tables (schema, index
//   descriptors, rows in scan order), objects (referencing rows by scan
//   ORDINAL — re-inserting into fresh tables makes ordinal == RowId),
//   next object id, ontologies (OBO text), then the annotation store:
//   term names (dense id order), the keyword index verbatim (token
//   strings + posting lists, so restore never re-tokenizes a document),
//   referents (with their a-graph of-object edge bit), annotations
//   (metadata + the serialized content XML byte-exact + the pre-lowered
//   phrase-search text), and the next annotation/referent ids.
//
// Restore cost model: the two expensive parts of the legacy XML reload
// are parsing 50k content documents and re-tokenizing them into the
// keyword index. The snapshot sidesteps both — content XML is parked
// cold in the store (hydrated lazily on first access) and the keyword
// index is adopted verbatim.
#include "core/durability.h"

#include <algorithm>
#include <chrono>
#include <thread>
#include <unordered_map>

#include "persist/format.h"
#include "persist/recovery.h"
#include "persist/snapshot.h"
#include "xml/xml_parser.h"

namespace graphitti {
namespace core {

using annotation::AnnotationId;
using annotation::AnnotationStore;
using annotation::ReferentId;
using persist::Decoder;
using persist::Encoder;
using relational::IndexKind;
using relational::Row;
using relational::RowId;
using relational::Schema;
using relational::Table;
using relational::Value;
using relational::ValueType;
using util::Result;
using util::Status;

namespace {

// --- Value / schema encoding (shared by kObject records and table rows) ---

constexpr uint8_t kValNull = 0;
constexpr uint8_t kValInt = 1;
constexpr uint8_t kValDouble = 2;
constexpr uint8_t kValString = 3;
constexpr uint8_t kValBytes = 4;

void EncodeValue(Encoder* enc, const Value& v) {
  switch (v.type()) {
    case ValueType::kNull:
      enc->PutU8(kValNull);
      break;
    case ValueType::kInt64:
      enc->PutU8(kValInt);
      enc->PutI64(v.as_int());
      break;
    case ValueType::kDouble:
      enc->PutU8(kValDouble);
      enc->PutDouble(v.as_double());
      break;
    case ValueType::kString:
      enc->PutU8(kValString);
      enc->PutString(v.as_string());
      break;
    case ValueType::kBytes: {
      const std::vector<uint8_t>& b = v.as_bytes();
      enc->PutU8(kValBytes);
      enc->PutString(std::string_view(reinterpret_cast<const char*>(b.data()), b.size()));
      break;
    }
  }
}

Result<Value> DecodeValue(Decoder* dec) {
  GRAPHITTI_ASSIGN_OR_RETURN(uint8_t tag, dec->GetU8());
  switch (tag) {
    case kValNull:
      return Value::Null();
    case kValInt: {
      GRAPHITTI_ASSIGN_OR_RETURN(int64_t v, dec->GetI64());
      return Value::Int(v);
    }
    case kValDouble: {
      GRAPHITTI_ASSIGN_OR_RETURN(double v, dec->GetDouble());
      return Value::Real(v);
    }
    case kValString: {
      GRAPHITTI_ASSIGN_OR_RETURN(std::string v, dec->GetString());
      return Value::Str(std::move(v));
    }
    case kValBytes: {
      GRAPHITTI_ASSIGN_OR_RETURN(std::string_view raw, dec->GetStringView());
      const uint8_t* p = reinterpret_cast<const uint8_t*>(raw.data());
      return Value::Blob(std::vector<uint8_t>(p, p + raw.size()));
    }
    default:
      return Status::Internal("unknown value tag " + std::to_string(tag));
  }
}

uint8_t TypeTag(ValueType t) {
  switch (t) {
    case ValueType::kNull:
      return kValNull;
    case ValueType::kInt64:
      return kValInt;
    case ValueType::kDouble:
      return kValDouble;
    case ValueType::kString:
      return kValString;
    case ValueType::kBytes:
      return kValBytes;
  }
  return kValNull;
}

void EncodeSchema(Encoder* enc, const Schema& schema) {
  enc->PutU32(static_cast<uint32_t>(schema.num_columns()));
  for (size_t i = 0; i < schema.num_columns(); ++i) {
    const relational::Column& col = schema.column(i);
    enc->PutString(col.name);
    enc->PutU8(TypeTag(col.type));
    enc->PutU8(col.nullable ? 1 : 0);
  }
}

Result<Schema> DecodeSchema(Decoder* dec) {
  GRAPHITTI_ASSIGN_OR_RETURN(uint32_t ncols, dec->GetU32());
  relational::SchemaBuilder sb;
  for (uint32_t i = 0; i < ncols; ++i) {
    GRAPHITTI_ASSIGN_OR_RETURN(std::string name, dec->GetString());
    GRAPHITTI_ASSIGN_OR_RETURN(uint8_t type, dec->GetU8());
    GRAPHITTI_ASSIGN_OR_RETURN(uint8_t nullable_byte, dec->GetU8());
    bool nullable = nullable_byte != 0;
    switch (type) {
      case kValInt:
        sb.Int(std::move(name), nullable);
        break;
      case kValDouble:
        sb.Real(std::move(name), nullable);
        break;
      case kValString:
        sb.Str(std::move(name), nullable);
        break;
      case kValBytes:
        sb.Blob(std::move(name), nullable);
        break;
      default:
        return Status::Internal("unknown column type tag " + std::to_string(type));
    }
  }
  return sb.Build();
}

// --- Dublin Core: u16 bitmap of non-empty fields in canonical order ---

constexpr size_t kNumDcFields = 13;

std::array<std::string annotation::DublinCore::*, kNumDcFields> DcFields() {
  using DC = annotation::DublinCore;
  return {&DC::title,    &DC::creator,  &DC::subject, &DC::description, &DC::date,
          &DC::type,     &DC::format,   &DC::identifier, &DC::source,
          &DC::language, &DC::relation, &DC::coverage,   &DC::rights};
}

void EncodeDublinCore(Encoder* enc, const annotation::DublinCore& dc) {
  auto fields = DcFields();
  uint32_t bitmap = 0;
  for (size_t i = 0; i < kNumDcFields; ++i) {
    if (!(dc.*fields[i]).empty()) bitmap |= 1u << i;
  }
  enc->PutU32(bitmap);
  for (size_t i = 0; i < kNumDcFields; ++i) {
    if (bitmap & (1u << i)) enc->PutString(dc.*fields[i]);
  }
}

Status DecodeDublinCore(Decoder* dec, annotation::DublinCore* dc) {
  auto fields = DcFields();
  GRAPHITTI_ASSIGN_OR_RETURN(uint32_t bitmap, dec->GetU32());
  for (size_t i = 0; i < kNumDcFields; ++i) {
    if (bitmap & (1u << i)) {
      GRAPHITTI_ASSIGN_OR_RETURN(dc->*fields[i], dec->GetString());
    }
  }
  return Status::OK();
}

// --- Substructures ---

void EncodeSubstructure(Encoder* enc, const substructure::Substructure& sub) {
  enc->PutU8(static_cast<uint8_t>(sub.type()));
  enc->PutString(sub.domain());
  switch (sub.type()) {
    case substructure::SubType::kInterval:
      enc->PutI64(sub.interval().lo);
      enc->PutI64(sub.interval().hi);
      break;
    case substructure::SubType::kRegion: {
      const spatial::Rect& r = sub.rect();
      enc->PutU8(static_cast<uint8_t>(r.dims));
      for (int d = 0; d < spatial::Rect::kMaxDims; ++d) {
        enc->PutDouble(r.lo[static_cast<size_t>(d)]);
      }
      for (int d = 0; d < spatial::Rect::kMaxDims; ++d) {
        enc->PutDouble(r.hi[static_cast<size_t>(d)]);
      }
      break;
    }
    default: {
      const std::vector<uint64_t>& elems = sub.elements();
      enc->PutU32(static_cast<uint32_t>(elems.size()));
      for (uint64_t e : elems) enc->PutU64(e);
      break;
    }
  }
}

Result<substructure::Substructure> DecodeSubstructure(Decoder* dec) {
  GRAPHITTI_ASSIGN_OR_RETURN(uint8_t type_tag, dec->GetU8());
  GRAPHITTI_ASSIGN_OR_RETURN(std::string domain, dec->GetString());
  auto type = static_cast<substructure::SubType>(type_tag);
  switch (type) {
    case substructure::SubType::kInterval: {
      spatial::Interval iv;
      GRAPHITTI_ASSIGN_OR_RETURN(iv.lo, dec->GetI64());
      GRAPHITTI_ASSIGN_OR_RETURN(iv.hi, dec->GetI64());
      return substructure::Substructure::MakeInterval(std::move(domain), iv);
    }
    case substructure::SubType::kRegion: {
      spatial::Rect r;
      GRAPHITTI_ASSIGN_OR_RETURN(uint8_t dims, dec->GetU8());
      r.dims = dims;
      for (int d = 0; d < spatial::Rect::kMaxDims; ++d) {
        GRAPHITTI_ASSIGN_OR_RETURN(r.lo[static_cast<size_t>(d)], dec->GetDouble());
      }
      for (int d = 0; d < spatial::Rect::kMaxDims; ++d) {
        GRAPHITTI_ASSIGN_OR_RETURN(r.hi[static_cast<size_t>(d)], dec->GetDouble());
      }
      return substructure::Substructure::MakeRegion(std::move(domain), r);
    }
    case substructure::SubType::kNodeSet:
    case substructure::SubType::kBlockSet:
    case substructure::SubType::kTreeClade: {
      GRAPHITTI_ASSIGN_OR_RETURN(uint32_t n, dec->GetU32());
      std::vector<uint64_t> elems;
      elems.reserve(n);
      for (uint32_t i = 0; i < n; ++i) {
        GRAPHITTI_ASSIGN_OR_RETURN(uint64_t e, dec->GetU64());
        elems.push_back(e);
      }
      switch (type) {
        case substructure::SubType::kNodeSet:
          return substructure::Substructure::MakeNodeSet(std::move(domain), std::move(elems));
        case substructure::SubType::kBlockSet:
          return substructure::Substructure::MakeBlockSet(std::move(domain),
                                                          std::move(elems));
        default:
          return substructure::Substructure::MakeTreeClade(std::move(domain),
                                                           std::move(elems));
      }
    }
  }
  return Status::Internal("unknown substructure type tag " + std::to_string(type_tag));
}

}  // namespace

// --- WAL record payload encoders (append sites live in graphitti.cc) ---

namespace walrec {

std::string EncodeCommitBatch(const AnnotationStore& store,
                              const std::vector<AnnotationId>& ids) {
  Encoder enc;
  enc.PutU32(static_cast<uint32_t>(ids.size()));
  for (AnnotationId id : ids) {
    const annotation::Annotation* ann = store.Get(id);
    enc.PutU64(id);
    // The post-commit content XML (with the id attribute stamped) is the
    // replay unit: FromContentXml reconstructs the builder and the parsed
    // document rides along as the prebuilt content, exactly like the
    // legacy XML reload path.
    enc.PutString(ann == nullptr ? std::string() : store.ContentXml(*ann));
  }
  return enc.Take();
}

std::string EncodeRemove(AnnotationId id) {
  Encoder enc;
  enc.PutU64(id);
  return enc.Take();
}

std::string EncodeObject(const ObjectInfo& info, const Row& row) {
  Encoder enc;
  enc.PutU64(info.id);
  enc.PutString(info.table);
  enc.PutString(info.label);
  enc.PutU64(info.row);
  enc.PutU32(static_cast<uint32_t>(row.size()));
  for (const Value& v : row) EncodeValue(&enc, v);
  return enc.Take();
}

std::string EncodeCreateTable(std::string_view name, const Schema& schema) {
  Encoder enc;
  enc.PutString(name);
  EncodeSchema(&enc, schema);
  return enc.Take();
}

std::string EncodeOntology(std::string_view name, std::string_view obo_text) {
  Encoder enc;
  enc.PutString(name);
  enc.PutString(obo_text);
  return enc.Take();
}

std::string EncodeCoordSystem(std::string_view name, int dims) {
  Encoder enc;
  enc.PutString(name);
  enc.PutU8(static_cast<uint8_t>(dims));
  return enc.Take();
}

std::string EncodeDerivedCoordSystem(
    std::string_view name, std::string_view canonical,
    const std::array<double, spatial::Rect::kMaxDims>& scale,
    const std::array<double, spatial::Rect::kMaxDims>& offset) {
  Encoder enc;
  enc.PutString(name);
  enc.PutString(canonical);
  for (double s : scale) enc.PutDouble(s);
  for (double o : offset) enc.PutDouble(o);
  return enc.Take();
}

}  // namespace walrec

// --- WAL plumbing ---

Status Graphitti::WalGuard() const {
  if (env_ != nullptr && wal_failed_) {
    // kUnavailable: the refusal is retryable by design — reads keep
    // serving, and a successful Checkpoint (or TryHeal) restores durable
    // mutations. Health() reports the mode and this rejection count.
    gov_counters_.degraded_rejections.fetch_add(1, std::memory_order_relaxed);
    return Status::Unavailable(
        "durable engine is read-only: an earlier WAL append failed and the "
        "log may be behind in-memory state; Checkpoint() (or TryHeal) to "
        "re-establish durability");
  }
  return Status::OK();
}

Status Graphitti::WalAppend(persist::WalRecordType type, std::string payload) {
  if (env_ == nullptr || wal_ == nullptr) return Status::OK();
  Status s = wal_->AppendRecord(type, payload);
  // Any failure degrades: the record may be torn on disk (recovery will
  // truncate it), so appending further records would leave a gap between
  // durable and in-memory state. WalGuard() refuses mutations until a
  // successful Checkpoint writes a fresh snapshot + empty WAL. The atomic
  // mirror (degraded_) makes the mode observable lock-free via Health().
  if (!s.ok()) {
    wal_failed_ = true;
    degraded_.store(true, std::memory_order_release);
    gov_counters_.wal_failures.fetch_add(1, std::memory_order_relaxed);
  }
  return s;
}

// --- WAL replay ---

Status Graphitti::ApplyWalRecord(const persist::WalRecord& record, EngineState& state) {
  // Boot/recovery mode: `state` is the initial version, not yet observable
  // by any reader, so it is mutated in place through the substrates
  // directly (never the public mutators, which would publish and log).
  Decoder dec(record.payload);
  switch (record.type) {
    case persist::WalRecordType::kCommitBatch: {
      GRAPHITTI_ASSIGN_OR_RETURN(uint32_t count, dec.GetU32());
      std::vector<AnnotationId> ids;
      std::vector<std::string> xmls;
      ids.reserve(count);
      xmls.reserve(count);
      for (uint32_t i = 0; i < count; ++i) {
        GRAPHITTI_ASSIGN_OR_RETURN(AnnotationId id, dec.GetU64());
        GRAPHITTI_ASSIGN_OR_RETURN(std::string xml, dec.GetString());
        // Duplicate delivery of an already-applied record (e.g. replay
        // after a crash mid-checkpoint-cleanup): skip the whole batch.
        if (state.store->Get(id) != nullptr) return Status::OK();
        ids.push_back(id);
        xmls.push_back(std::move(xml));
      }
      std::vector<annotation::AnnotationBuilder> builders;
      std::vector<xml::XmlDocument> contents;
      builders.reserve(count);
      contents.reserve(count);
      for (uint32_t i = 0; i < count; ++i) {
        GRAPHITTI_ASSIGN_OR_RETURN(xml::XmlDocument doc, xml::ParseXml(xmls[i]));
        GRAPHITTI_ASSIGN_OR_RETURN(
            annotation::AnnotationBuilder builder,
            annotation::AnnotationBuilder::FromContentXml(doc.root()));
        builders.push_back(std::move(builder));
        contents.push_back(std::move(doc));
      }
      return state.store->CommitBatch(std::move(builders), ids, &contents).status();
    }
    case persist::WalRecordType::kRemove: {
      GRAPHITTI_ASSIGN_OR_RETURN(AnnotationId id, dec.GetU64());
      Status s = state.store->Remove(id);
      return s.IsNotFound() ? Status::OK() : s;  // duplicate delivery
    }
    case persist::WalRecordType::kObject: {
      GRAPHITTI_ASSIGN_OR_RETURN(uint64_t object_id, dec.GetU64());
      GRAPHITTI_ASSIGN_OR_RETURN(std::string table, dec.GetString());
      GRAPHITTI_ASSIGN_OR_RETURN(std::string label, dec.GetString());
      GRAPHITTI_ASSIGN_OR_RETURN(RowId logged_rid, dec.GetU64());
      GRAPHITTI_ASSIGN_OR_RETURN(uint32_t ncols, dec.GetU32());
      {
        util::MutexLock meta(meta_mu_);
        if (objects_.count(object_id) > 0) return Status::OK();  // duplicate
      }
      Row row;
      row.reserve(ncols);
      for (uint32_t i = 0; i < ncols; ++i) {
        GRAPHITTI_ASSIGN_OR_RETURN(Value v, DecodeValue(&dec));
        row.push_back(std::move(v));
      }
      Table* t = state.catalog.GetTable(table);
      if (t == nullptr) {
        return Status::Internal("WAL object record targets missing table '" + table + "'");
      }
      GRAPHITTI_ASSIGN_OR_RETURN(RowId rid, t->Insert(std::move(row)));
      if (rid != logged_rid) {
        // Replay from the logged base state is deterministic; divergence
        // means the WAL does not belong to this base.
        return Status::Internal("WAL object replay row id " + std::to_string(rid) +
                                " != logged " + std::to_string(logged_rid) +
                                " (WAL does not match its base state)");
      }
      return RestoreObjectInto(state, object_id, table, rid, std::move(label));
    }
    case persist::WalRecordType::kCreateTable: {
      GRAPHITTI_ASSIGN_OR_RETURN(std::string name, dec.GetString());
      GRAPHITTI_ASSIGN_OR_RETURN(Schema schema, DecodeSchema(&dec));
      Status s = state.catalog.CreateTable(std::move(name), std::move(schema)).status();
      return s.IsAlreadyExists() ? Status::OK() : s;
    }
    case persist::WalRecordType::kOntology: {
      GRAPHITTI_ASSIGN_OR_RETURN(std::string name, dec.GetString());
      GRAPHITTI_ASSIGN_OR_RETURN(std::string obo, dec.GetString());
      Status s = LoadOntologyInto(std::move(name), obo);
      return s.IsAlreadyExists() ? Status::OK() : s;
    }
    case persist::WalRecordType::kCoordSystem: {
      GRAPHITTI_ASSIGN_OR_RETURN(std::string name, dec.GetString());
      GRAPHITTI_ASSIGN_OR_RETURN(uint8_t dims, dec.GetU8());
      Status s = state.indexes.coordinate_systems().RegisterCanonical(name, dims);
      return s.IsAlreadyExists() ? Status::OK() : s;
    }
    case persist::WalRecordType::kDerivedCoordSystem: {
      GRAPHITTI_ASSIGN_OR_RETURN(std::string name, dec.GetString());
      GRAPHITTI_ASSIGN_OR_RETURN(std::string canonical, dec.GetString());
      std::array<double, spatial::Rect::kMaxDims> scale{};
      std::array<double, spatial::Rect::kMaxDims> offset{};
      for (double& v : scale) {
        GRAPHITTI_ASSIGN_OR_RETURN(v, dec.GetDouble());
      }
      for (double& v : offset) {
        GRAPHITTI_ASSIGN_OR_RETURN(v, dec.GetDouble());
      }
      Status s = state.indexes.coordinate_systems().RegisterDerived(name, canonical, scale,
                                                                   offset);
      return s.IsAlreadyExists() ? Status::OK() : s;
    }
    case persist::WalRecordType::kVacuum:
      for (const std::string& name : state.catalog.TableNames()) {
        state.catalog.GetTable(name)->Vacuum();
      }
      return Status::OK();
  }
  return Status::Internal("unknown WAL record type " +
                          std::to_string(static_cast<int>(record.type)));
}

// --- Snapshot encode ---

std::string Graphitti::EncodeSnapshotBody(const EngineState& state) const {
  Encoder enc;

  // Coordinate systems, canonical-first (restore re-registers in order).
  std::vector<spatial::CoordinateSystem> systems = state.indexes.coordinate_systems().All();
  enc.PutU32(static_cast<uint32_t>(systems.size()));
  for (const spatial::CoordinateSystem& cs : systems) {
    enc.PutString(cs.name);
    enc.PutString(cs.canonical);
    enc.PutU8(static_cast<uint8_t>(cs.dims));
    for (double s : cs.scale) enc.PutDouble(s);
    for (double o : cs.offset) enc.PutDouble(o);
  }

  // Tables: schema + index descriptors + rows in scan order. Objects below
  // reference rows by scan ordinal (restore re-inserts contiguously, so
  // ordinal == RowId there — the same trick as the legacy XML save).
  std::vector<std::string> table_names = state.catalog.TableNames();
  enc.PutU32(static_cast<uint32_t>(table_names.size()));
  std::map<std::string, std::unordered_map<RowId, uint64_t>> ordinals;
  for (const std::string& name : table_names) {
    const Table* table = state.catalog.GetTable(name);
    enc.PutString(name);
    EncodeSchema(&enc, table->schema());
    std::vector<std::pair<std::string, IndexKind>> idx = table->IndexDescriptors();
    enc.PutU32(static_cast<uint32_t>(idx.size()));
    for (const auto& [col, kind] : idx) {
      enc.PutString(col);
      enc.PutU8(kind == IndexKind::kHash ? 0 : 1);
    }
    enc.PutU64(table->size());
    std::unordered_map<RowId, uint64_t>& table_ordinals = ordinals[name];
    uint64_t ordinal = 0;
    table->Scan([&](RowId id, const Row& row) {
      table_ordinals[id] = ordinal++;
      for (const Value& v : row) EncodeValue(&enc, v);
    });
  }

  // Objects and ontologies live in engine metadata, not the versioned
  // state; meta_mu_ covers the reads. A registration racing this encode
  // would reference a row the snapshot's `state` lacks — the ordinal skip
  // below drops it, matching the snapshot's version cut. (Checkpoint holds
  // commit_mu_, so in practice no such race exists there.)
  {
    util::MutexLock meta(meta_mu_);
    std::vector<std::pair<const ObjectInfo*, uint64_t>> live;
    live.reserve(objects_.size());
    for (const auto& [id, info] : objects_) {
      (void)id;
      auto tit = ordinals.find(info.table);
      if (tit == ordinals.end()) continue;
      auto rit = tit->second.find(info.row);
      if (rit == tit->second.end()) continue;
      live.emplace_back(&info, rit->second);
    }
    enc.PutU32(static_cast<uint32_t>(live.size()));
    for (const auto& [info, ordinal] : live) {
      enc.PutU64(info->id);
      enc.PutString(info->table);
      enc.PutU64(ordinal);
      enc.PutString(info->label);
    }
    enc.PutU64(next_object_id_);

    enc.PutU32(static_cast<uint32_t>(ontologies_.size()));
    for (const auto& [name, onto] : ontologies_) {
      enc.PutString(name);
      enc.PutString(ontology::ToObo(onto));
    }
  }

  // Annotation store: term names, the keyword index verbatim, referents,
  // annotations.
  const AnnotationStore& store = *state.store;
  const std::vector<std::string>& terms = store.TermNames();
  enc.PutU32(static_cast<uint32_t>(terms.size()));
  for (const std::string& t : terms) enc.PutString(t);

  enc.PutU32(static_cast<uint32_t>(store.NumTokens()));
  for (uint32_t tid = 0; tid < store.NumTokens(); ++tid) {
    enc.PutString(store.TokenString(tid));
    const std::vector<AnnotationId>& posting = store.PostingsOf(tid);
    enc.PutU32(static_cast<uint32_t>(posting.size()));
    for (AnnotationId id : posting) enc.PutU64(id);
  }

  enc.PutU64(store.num_referents());
  store.ForEachReferent([&](ReferentId rid, const annotation::Referent& ref) {
    enc.PutU64(rid);
    enc.PutU64(ref.object_id);
    enc.PutU64(ref.refcount);
    // Whether the a-graph carries the referent->object edge: absent when a
    // later commit adopted the object id without re-marking, and restore
    // must not invent it.
    bool edge = ref.object_id != 0 &&
                state.graph.HasEdge(AnnotationStore::ReferentNode(rid),
                                    agraph::NodeRef::Object(ref.object_id),
                                    annotation::kEdgeOfObject);
    enc.PutU8(edge ? 1 : 0);
    EncodeSubstructure(&enc, ref.substructure);
  });

  enc.PutU64(store.size());
  store.ForEachAnnotation([&](AnnotationId id, const annotation::Annotation& ann) {
    enc.PutU64(id);
    EncodeDublinCore(&enc, ann.dc);
    enc.PutString(ann.body);
    enc.PutU32(static_cast<uint32_t>(ann.user_tags.size()));
    for (const auto& [k, v] : ann.user_tags) {
      enc.PutString(k);
      enc.PutString(v);
    }
    enc.PutU32(static_cast<uint32_t>(ann.ontology_refs.size()));
    for (const annotation::OntologyRef& oref : ann.ontology_refs) {
      enc.PutString(oref.ontology);
      enc.PutString(oref.term);
    }
    enc.PutU32(static_cast<uint32_t>(ann.referents.size()));
    for (ReferentId rid : ann.referents) enc.PutU64(rid);
    // Byte-exact serialized content (cold entries pass through verbatim),
    // plus the pre-lowered phrase-search text so restore derives nothing.
    enc.PutString(store.ContentXml(ann));
    enc.PutString(store.LowerTextOf(id));
  });

  enc.PutU64(store.next_annotation_id());
  enc.PutU64(store.next_referent_id());
  return enc.Take();
}

// --- Snapshot restore ---

Status Graphitti::RestoreFromSnapshotBody(std::string_view body, EngineState& state) {
  Decoder dec(body);
  // Cooperative cancellation, checked every 1024 items of the bulk loops.
  // The caller owns rollback: a kCancelled return means `state` (and the
  // engine metadata the restore already touched) is half-built.
  auto hydrate_check = [this](uint64_t i) -> Status {
    if ((i & 1023) == 0 && hydrate_cancel_.cancelled()) {
      return Status::Cancelled("hydration cancelled");
    }
    return Status::OK();
  };

  // Boot/recovery mode: `state` is not yet observable by any reader, so
  // it is rebuilt in place through the substrates directly (never the
  // public mutators, which would publish and log).
  GRAPHITTI_ASSIGN_OR_RETURN(uint32_t ncs, dec.GetU32());
  for (uint32_t i = 0; i < ncs; ++i) {
    GRAPHITTI_ASSIGN_OR_RETURN(std::string name, dec.GetString());
    GRAPHITTI_ASSIGN_OR_RETURN(std::string canonical, dec.GetString());
    GRAPHITTI_ASSIGN_OR_RETURN(uint8_t dims, dec.GetU8());
    std::array<double, spatial::Rect::kMaxDims> scale{};
    std::array<double, spatial::Rect::kMaxDims> offset{};
    for (double& v : scale) {
      GRAPHITTI_ASSIGN_OR_RETURN(v, dec.GetDouble());
    }
    for (double& v : offset) {
      GRAPHITTI_ASSIGN_OR_RETURN(v, dec.GetDouble());
    }
    if (name == canonical) {
      GRAPHITTI_RETURN_NOT_OK(state.indexes.coordinate_systems().RegisterCanonical(name, dims));
    } else {
      GRAPHITTI_RETURN_NOT_OK(
          state.indexes.coordinate_systems().RegisterDerived(name, canonical, scale, offset));
    }
  }

  // Tables. Built-ins already exist (same construction path), user tables
  // are created; rows re-insert contiguously so ordinal == RowId.
  GRAPHITTI_ASSIGN_OR_RETURN(uint32_t ntables, dec.GetU32());
  std::map<std::string, std::vector<RowId>> rows_by_ordinal;
  for (uint32_t i = 0; i < ntables; ++i) {
    GRAPHITTI_ASSIGN_OR_RETURN(std::string name, dec.GetString());
    GRAPHITTI_ASSIGN_OR_RETURN(Schema schema, DecodeSchema(&dec));
    Table* table = state.catalog.GetTable(name);
    if (table == nullptr) {
      GRAPHITTI_ASSIGN_OR_RETURN(table, state.catalog.CreateTable(name, std::move(schema)));
    }
    GRAPHITTI_ASSIGN_OR_RETURN(uint32_t nidx, dec.GetU32());
    for (uint32_t j = 0; j < nidx; ++j) {
      GRAPHITTI_ASSIGN_OR_RETURN(std::string col, dec.GetString());
      GRAPHITTI_ASSIGN_OR_RETURN(uint8_t kind, dec.GetU8());
      Status s = table->CreateIndex(col, kind == 0 ? IndexKind::kHash : IndexKind::kOrdered);
      if (!s.ok() && !s.IsAlreadyExists()) return s;
    }
    GRAPHITTI_ASSIGN_OR_RETURN(uint64_t nrows, dec.GetU64());
    const size_t ncols = table->schema().num_columns();
    std::vector<RowId>& rids = rows_by_ordinal[name];
    rids.reserve(nrows);
    for (uint64_t r = 0; r < nrows; ++r) {
      GRAPHITTI_RETURN_NOT_OK(hydrate_check(r));
      Row row;
      row.reserve(ncols);
      for (size_t c = 0; c < ncols; ++c) {
        GRAPHITTI_ASSIGN_OR_RETURN(Value v, DecodeValue(&dec));
        row.push_back(std::move(v));
      }
      GRAPHITTI_ASSIGN_OR_RETURN(RowId rid, table->Insert(std::move(row)));
      rids.push_back(rid);
    }
  }

  // Objects.
  GRAPHITTI_ASSIGN_OR_RETURN(uint32_t nobjects, dec.GetU32());
  for (uint32_t i = 0; i < nobjects; ++i) {
    GRAPHITTI_ASSIGN_OR_RETURN(uint64_t object_id, dec.GetU64());
    GRAPHITTI_ASSIGN_OR_RETURN(std::string table, dec.GetString());
    GRAPHITTI_ASSIGN_OR_RETURN(uint64_t ordinal, dec.GetU64());
    GRAPHITTI_ASSIGN_OR_RETURN(std::string label, dec.GetString());
    auto it = rows_by_ordinal.find(table);
    if (it == rows_by_ordinal.end() || ordinal >= it->second.size()) {
      return Status::Internal("snapshot object " + std::to_string(object_id) +
                              " references row ordinal " + std::to_string(ordinal) +
                              " beyond table '" + table + "'");
    }
    GRAPHITTI_RETURN_NOT_OK(
        RestoreObjectInto(state, object_id, table, it->second[ordinal], std::move(label)));
  }
  GRAPHITTI_ASSIGN_OR_RETURN(uint64_t next_object, dec.GetU64());
  {
    util::MutexLock meta(meta_mu_);
    next_object_id_ = std::max(next_object_id_, next_object);
  }

  // Ontologies.
  GRAPHITTI_ASSIGN_OR_RETURN(uint32_t nontos, dec.GetU32());
  for (uint32_t i = 0; i < nontos; ++i) {
    GRAPHITTI_ASSIGN_OR_RETURN(std::string name, dec.GetString());
    GRAPHITTI_ASSIGN_OR_RETURN(std::string obo, dec.GetString());
    GRAPHITTI_RETURN_NOT_OK(LoadOntologyInto(std::move(name), obo));
  }

  // Annotation store.
  std::vector<std::string> term_names;
  GRAPHITTI_ASSIGN_OR_RETURN(uint32_t nterms, dec.GetU32());
  term_names.reserve(nterms);
  for (uint32_t i = 0; i < nterms; ++i) {
    GRAPHITTI_ASSIGN_OR_RETURN(std::string t, dec.GetString());
    term_names.push_back(std::move(t));
  }

  AnnotationStore::RestoredKeywordIndex keyword_index;
  GRAPHITTI_ASSIGN_OR_RETURN(uint32_t ntokens, dec.GetU32());
  keyword_index.tokens.reserve(ntokens);
  keyword_index.postings.reserve(ntokens);
  for (uint32_t i = 0; i < ntokens; ++i) {
    GRAPHITTI_ASSIGN_OR_RETURN(std::string token, dec.GetString());
    GRAPHITTI_ASSIGN_OR_RETURN(uint32_t n, dec.GetU32());
    std::vector<AnnotationId> posting;
    posting.reserve(n);
    for (uint32_t j = 0; j < n; ++j) {
      GRAPHITTI_ASSIGN_OR_RETURN(AnnotationId id, dec.GetU64());
      posting.push_back(id);
    }
    keyword_index.tokens.push_back(std::move(token));
    keyword_index.postings.push_back(std::move(posting));
  }

  GRAPHITTI_ASSIGN_OR_RETURN(uint64_t nrefs, dec.GetU64());
  std::vector<AnnotationStore::RestoredReferent> referents;
  referents.reserve(nrefs);
  for (uint64_t i = 0; i < nrefs; ++i) {
    GRAPHITTI_RETURN_NOT_OK(hydrate_check(i));
    AnnotationStore::RestoredReferent rr;
    GRAPHITTI_ASSIGN_OR_RETURN(rr.ref.id, dec.GetU64());
    GRAPHITTI_ASSIGN_OR_RETURN(rr.ref.object_id, dec.GetU64());
    GRAPHITTI_ASSIGN_OR_RETURN(uint64_t refcount, dec.GetU64());
    rr.ref.refcount = static_cast<size_t>(refcount);
    GRAPHITTI_ASSIGN_OR_RETURN(uint8_t edge, dec.GetU8());
    rr.object_edge = edge != 0;
    GRAPHITTI_ASSIGN_OR_RETURN(rr.ref.substructure, DecodeSubstructure(&dec));
    referents.push_back(std::move(rr));
  }

  GRAPHITTI_ASSIGN_OR_RETURN(uint64_t nanns, dec.GetU64());
  std::vector<AnnotationStore::RestoredAnnotation> annotations;
  annotations.reserve(nanns);
  for (uint64_t i = 0; i < nanns; ++i) {
    GRAPHITTI_RETURN_NOT_OK(hydrate_check(i));
    AnnotationStore::RestoredAnnotation ra;
    GRAPHITTI_ASSIGN_OR_RETURN(ra.ann.id, dec.GetU64());
    GRAPHITTI_RETURN_NOT_OK(DecodeDublinCore(&dec, &ra.ann.dc));
    GRAPHITTI_ASSIGN_OR_RETURN(ra.ann.body, dec.GetString());
    GRAPHITTI_ASSIGN_OR_RETURN(uint32_t ntags, dec.GetU32());
    ra.ann.user_tags.reserve(ntags);
    for (uint32_t j = 0; j < ntags; ++j) {
      GRAPHITTI_ASSIGN_OR_RETURN(std::string k, dec.GetString());
      GRAPHITTI_ASSIGN_OR_RETURN(std::string v, dec.GetString());
      ra.ann.user_tags.emplace_back(std::move(k), std::move(v));
    }
    GRAPHITTI_ASSIGN_OR_RETURN(uint32_t norefs, dec.GetU32());
    ra.ann.ontology_refs.reserve(norefs);
    for (uint32_t j = 0; j < norefs; ++j) {
      annotation::OntologyRef oref;
      GRAPHITTI_ASSIGN_OR_RETURN(oref.ontology, dec.GetString());
      GRAPHITTI_ASSIGN_OR_RETURN(oref.term, dec.GetString());
      ra.ann.ontology_refs.push_back(std::move(oref));
    }
    GRAPHITTI_ASSIGN_OR_RETURN(uint32_t nr, dec.GetU32());
    ra.ann.referents.reserve(nr);
    for (uint32_t j = 0; j < nr; ++j) {
      GRAPHITTI_ASSIGN_OR_RETURN(ReferentId rid, dec.GetU64());
      ra.ann.referents.push_back(rid);
    }
    GRAPHITTI_ASSIGN_OR_RETURN(ra.content_xml, dec.GetString());
    GRAPHITTI_ASSIGN_OR_RETURN(ra.lower_text, dec.GetString());
    annotations.push_back(std::move(ra));
  }

  GRAPHITTI_ASSIGN_OR_RETURN(uint64_t next_ann, dec.GetU64());
  GRAPHITTI_ASSIGN_OR_RETURN(uint64_t next_ref, dec.GetU64());
  if (!dec.Done()) {
    return Status::Internal("snapshot body has " + std::to_string(dec.remaining()) +
                            " trailing bytes");
  }
  return state.store->RestoreSnapshotState(std::move(referents), std::move(annotations),
                                           std::move(keyword_index), std::move(term_names),
                                           next_ann, next_ref);
}

// --- Recovery and checkpointing ---

Result<std::unique_ptr<Graphitti>> Graphitti::RecoverBinary(
    persist::Env* env, const std::string& directory, const DurabilityOptions& options,
    persist::RecoveryPlan plan, bool attach_wal) {
  auto g = std::make_unique<Graphitti>();
  // Installed before any restore work so both eager and deferred
  // hydration honour it (an eager open cancelled mid-restore simply fails
  // with kCancelled and the engine is discarded).
  g->hydrate_cancel_ = options.hydrate_cancel;
  // The WAL is read (and its torn tail identified) now in either mode:
  // every crash-safety decision happens at open. A torn tail was already
  // cut at the first bad length/CRC; everything before it is a committed
  // prefix and replays cleanly.
  std::vector<persist::WalRecord> wal_records;
  if (plan.has_wal) {
    GRAPHITTI_ASSIGN_OR_RETURN(persist::WalContents wal,
                               persist::ReadWal(*env, plan.wal_path));
    wal_records = std::move(wal.records);
  }
  if (options.eager_restore) {
    // The engine is brand new: its initial version has no observers, so
    // recovery rebuilds it in place.
    EngineState& state = *g->CurrentState();
    if (plan.has_snapshot) {
      GRAPHITTI_RETURN_NOT_OK(g->RestoreFromSnapshotBody(plan.snapshot_body, state));
    }
    for (const persist::WalRecord& rec : wal_records) {
      GRAPHITTI_RETURN_NOT_OK(g->ApplyWalRecord(rec, state));
    }
  } else if (plan.has_snapshot || !wal_records.empty()) {
    // Fast restart: the snapshot body is already CRC-verified, so decoding
    // it (and replaying the verified tail) is deferred to the first public
    // call — see EnsureHydrated/HydrateNow.
    auto stash = std::make_unique<PendingRestore>();
    stash->has_snapshot = plan.has_snapshot;
    stash->snapshot_body = std::move(plan.snapshot_body);
    stash->wal_records = std::move(wal_records);
    {
      // Boot-time (g is unshared), but the stash is hydrate-side state —
      // uncontended lock keeps the write statically provable.
      util::MutexLock hydrate(g->hydrate_mu_);
      g->pending_restore_ = std::move(stash);
    }
    g->hydration_pending_.store(true, std::memory_order_release);
  }
  g->generation_ = plan.generation;
  if (attach_wal) {
    g->env_ = env;
    g->durable_dir_ = directory;
    g->wal_options_ = options.wal;
    // Boot-time: no other thread can reach g yet, but the WAL handle is
    // commit-side state, so take the (uncontended) commit lock to keep the
    // write statically provable.
    util::MutexLock commit(g->commit_mu_);
    // Reopening an existing WAL truncates any torn tail before appending;
    // a missing one (crash between snapshot rename and WAL creation) is
    // created fresh.
    GRAPHITTI_ASSIGN_OR_RETURN(
        g->wal_, persist::WalWriter::Open(
                     env, directory + "/" + persist::WalFileName(plan.generation),
                     plan.generation, options.wal));
    for (const std::string& stale : plan.stale_files) (void)env->RemoveFile(stale);
    (void)env->SyncDir(directory);
  }
  return g;
}

void Graphitti::DiscardPartialHydration() {
  // Only reachable from HydrateNow with hydrate_mu_ held and hydration
  // still pending: every public entry point funnels through EnsureHydrated
  // and is blocked on that lock, so the half-built initial version has no
  // observers. Replace it wholesale and reset the engine metadata the
  // restore touched (ontologies, object registry) to boot state — no
  // stable pointers have been handed out yet.
  auto fresh = std::make_unique<EngineState>();
  fresh->InstallBuiltins();
  epochs_->Publish(std::move(fresh), /*tag=*/0);
  util::MutexLock meta(meta_mu_);
  ontologies_.clear();
  objects_.clear();
  object_by_row_.clear();
  next_object_id_ = 1;
}

Status Graphitti::HydrateNow() const {
  // The deferred-recovery members (hydrate_mu_, pending_restore_,
  // hydrate_status_, hydration_pending_) are all mutable precisely so this
  // const entry point can lock and update them through `this` — keeping
  // every guarded access on one base object for the thread-safety
  // analysis. const_cast is confined to the boot-mode replay helpers,
  // which are non-const but touch only the unpublished initial version.
  util::MutexLock lk(hydrate_mu_);
  if (!hydration_pending_.load(std::memory_order_relaxed)) return Status::OK();
  if (!hydrate_status_.ok()) return hydrate_status_;  // poisoned: never retried
  // hydration_pending_ stays true for the whole decode: every other
  // thread's EnsureHydrated funnels here and blocks on hydrate_mu_, so no
  // reader can pin (let alone observe) the half-built initial version.
  // The boot-mode helpers mutate that version in place and never touch
  // the WAL, so nothing gets re-logged.
  std::unique_ptr<PendingRestore> stash = std::move(pending_restore_);
  Graphitti* self = const_cast<Graphitti*>(this);
  EngineState& state = *CurrentState();
  Status st;
  if (stash->has_snapshot) st = self->RestoreFromSnapshotBody(stash->snapshot_body, state);
  if (st.ok()) {
    for (const persist::WalRecord& rec : stash->wal_records) {
      if (hydrate_cancel_.cancelled()) {
        st = Status::Cancelled("hydration cancelled");
        break;
      }
      st = self->ApplyWalRecord(rec, state);
      if (!st.ok()) break;
    }
  }
  if (!st.ok()) {
    if (st.IsCancelled()) {
      // Cancellation is retryable, never sticky: throw away the half-built
      // state wholesale, put the stash back, and leave hydration pending.
      // Reset() on the token + any public call retries from scratch.
      self->DiscardPartialHydration();
      pending_restore_ = std::move(stash);
      return st;
    }
    // Should be unreachable for a CRC-clean snapshot + settled WAL; if it
    // happens, poison rather than serve the partial state.
    hydrate_status_ = st;
    return st;
  }
  hydration_pending_.store(false, std::memory_order_release);
  return Status::OK();
}

Result<std::unique_ptr<Graphitti>> Graphitti::OpenDurable(const std::string& directory,
                                                          const DurabilityOptions& options) {
  persist::Env* env = options.env != nullptr ? options.env : persist::Env::Default();
  GRAPHITTI_RETURN_NOT_OK(env->CreateDirs(directory));
  GRAPHITTI_ASSIGN_OR_RETURN(persist::RecoveryPlan plan,
                             persist::PlanRecovery(*env, directory));
  if (plan.kind == persist::RecoveryPlan::Kind::kLegacyXml) {
    // Pre-WAL XML save: load through the legacy path (real filesystem —
    // legacy saves predate the Env seam), then immediately checkpoint
    // into the binary format (snapshot-1 + wal-1; later recoveries take
    // the binary branch and ignore the legacy files).
    GRAPHITTI_ASSIGN_OR_RETURN(std::unique_ptr<Graphitti> g, LoadFrom(directory));
    g->env_ = env;
    g->durable_dir_ = directory;
    g->wal_options_ = options.wal;
    GRAPHITTI_RETURN_NOT_OK(g->Checkpoint());
    return g;
  }
  return RecoverBinary(env, directory, options, std::move(plan), /*attach_wal=*/true);
}

Status Graphitti::Checkpoint() {
  GRAPHITTI_RETURN_NOT_OK(EnsureHydrated());
  // Checkpointing serializes against *writers* (commit_mu_), never against
  // readers: the current version is immutable once published, so encoding
  // it races nothing, and readers keep pinning and serving throughout.
  util::MutexLock commit(commit_mu_);
  if (env_ == nullptr) {
    return Status::Unsupported("Checkpoint() requires an OpenDurable engine");
  }
  // Ordering is the crash-safety argument: (1) snapshot g+1 lands
  // atomically (temp + fsync + rename + dir fsync) — a crash before this
  // leaves generation g fully intact; (2) wal-(g+1) is created with a
  // synced header — a crash between (1) and (2) recovers snapshot g+1
  // with no WAL, which is exactly its state; (3) only then are the old
  // generation's files deleted — a crash mid-cleanup leaves stale files
  // that PlanRecovery recognizes and removes.
  const uint64_t next_gen = generation_ + 1;
  std::string body = EncodeSnapshotBody(*CurrentState());
  GRAPHITTI_RETURN_NOT_OK(persist::WriteSnapshotFile(
      env_, durable_dir_ + "/" + persist::SnapshotFileName(next_gen), next_gen, body));
  GRAPHITTI_ASSIGN_OR_RETURN(
      std::unique_ptr<persist::WalWriter> next_wal,
      persist::WalWriter::Open(env_, durable_dir_ + "/" + persist::WalFileName(next_gen),
                               next_gen, wal_options_));
  std::string old_wal_path = wal_ != nullptr ? wal_->path() : std::string();
  const uint64_t old_gen = generation_;
  wal_ = std::move(next_wal);
  generation_ = next_gen;
  // The new snapshot captures all in-memory state, including anything a
  // failed append never made durable — the WAL is whole again.
  wal_failed_ = false;
  if (degraded_.exchange(false, std::memory_order_acq_rel)) {
    gov_counters_.heals.fetch_add(1, std::memory_order_relaxed);
  }
  if (old_gen > 0) {
    (void)env_->RemoveFile(durable_dir_ + "/" + persist::SnapshotFileName(old_gen));
  }
  if (!old_wal_path.empty()) (void)env_->RemoveFile(old_wal_path);
  (void)env_->SyncDir(durable_dir_);
  return Status::OK();
}

Status Graphitti::TryHeal(size_t max_attempts, std::chrono::milliseconds initial_backoff) {
  if (env_ == nullptr) {
    return Status::Unsupported("TryHeal() requires an OpenDurable engine");
  }
  if (!degraded_.load(std::memory_order_acquire)) return Status::OK();
  Status last = Status::OK();
  std::chrono::milliseconds backoff = initial_backoff;
  for (size_t attempt = 0; attempt < max_attempts; ++attempt) {
    if (attempt > 0) {
      // Backoff happens with no engine lock held: readers and other
      // writers proceed normally between attempts.
      std::this_thread::sleep_for(backoff);
      backoff *= 2;
    }
    last = Checkpoint();
    if (last.ok()) return Status::OK();
  }
  return last;
}

HealthSnapshot Graphitti::Health() const {
  HealthSnapshot h;
  h.durable = IsDurable();
  h.mode = degraded_.load(std::memory_order_acquire) ? EngineMode::kReadOnly
                                                     : EngineMode::kServing;
  h.hydration_pending = hydration_pending_.load(std::memory_order_acquire);
  h.generation = generation();
  h.wal_failures = gov_counters_.wal_failures.load(std::memory_order_relaxed);
  h.degraded_rejections =
      gov_counters_.degraded_rejections.load(std::memory_order_relaxed);
  h.heals = gov_counters_.heals.load(std::memory_order_relaxed);
  h.deadline_exceeded =
      gov_counters_.deadline_exceeded.load(std::memory_order_relaxed);
  h.cancelled = gov_counters_.cancelled.load(std::memory_order_relaxed);
  h.resource_exhausted =
      gov_counters_.resource_exhausted.load(std::memory_order_relaxed);
  if (admission_ != nullptr) h.admission = admission_->Counters();
  return h;
}

void Graphitti::ConfigureAdmission(const util::AdmissionOptions& options) {
  admission_ = std::make_unique<util::AdmissionController>(options);
}

}  // namespace core
}  // namespace graphitti
