#include <gtest/gtest.h>

#include "core/graphitti.h"

namespace graphitti {
namespace core {
namespace {

using annotation::AnnotationBuilder;
using relational::CompareOp;
using relational::Predicate;
using relational::Value;

TEST(GraphittiTest, BuiltinTablesRegistered) {
  Graphitti g;
  EXPECT_NE(g.catalog().GetTable(kTableDna), nullptr);
  EXPECT_NE(g.catalog().GetTable(kTableRna), nullptr);
  EXPECT_NE(g.catalog().GetTable(kTableProtein), nullptr);
  EXPECT_NE(g.catalog().GetTable(kTableImage), nullptr);
  EXPECT_NE(g.catalog().GetTable(kTablePhyloTree), nullptr);
  EXPECT_NE(g.catalog().GetTable(kTableInteractionGraph), nullptr);
  EXPECT_NE(g.catalog().GetTable(kTableMsa), nullptr);
  EXPECT_TRUE(g.catalog().GetTable(kTableDna)->HasIndex("accession"));
}

TEST(GraphittiTest, IngestSequencesRegistersObjects) {
  Graphitti g;
  auto obj = g.IngestDnaSequence("AF001", "H5N1", "flu:seg4", "ACGTACGT");
  ASSERT_TRUE(obj.ok());
  const ObjectInfo* info = g.GetObject(*obj);
  ASSERT_NE(info, nullptr);
  EXPECT_EQ(info->table, kTableDna);
  EXPECT_EQ(info->label, "dna_sequences/AF001");
  EXPECT_TRUE(g.graph().HasNode(agraph::NodeRef::Object(*obj)));

  const relational::Row* row = g.GetObjectRow(*obj);
  ASSERT_NE(row, nullptr);
  EXPECT_EQ((*row)[3].as_int(), 8);  // length column derived from residues
  EXPECT_EQ(g.DescribeObject(*obj), "dna_sequences/AF001");
  EXPECT_EQ(g.DescribeObject(9999), "object-9999");
}

TEST(GraphittiTest, IngestOtherTypes) {
  Graphitti g;
  EXPECT_TRUE(g.IngestRnaSequence("R1", "H1N1", "flu:seg1", "ACGU").ok());
  EXPECT_TRUE(g.IngestProteinSequence("P1", "H5N1", "HA", "MKTII").ok());
  EXPECT_TRUE(g.IngestPhyloTree("t1", "(A,B);").ok());
  EXPECT_TRUE(g.IngestPhyloTree("bad", "(((").status().IsParseError());

  InteractionGraph ig("ppi");
  uint64_t a = *ig.AddNode("HA");
  uint64_t b = *ig.AddNode("NA");
  ASSERT_TRUE(ig.AddEdge(a, b).ok());
  EXPECT_TRUE(g.IngestInteractionGraph(ig).ok());
  EXPECT_TRUE(g.IngestInteractionGraph(InteractionGraph("")).status().IsInvalidArgument());

  Msa msa;
  msa.name = "aln1";
  msa.rows = {{"s1", "AC-GT"}, {"s2", "ACGGT"}};
  EXPECT_TRUE(g.IngestMsa(msa).ok());
  msa.rows.push_back({"s3", "AC"});
  EXPECT_TRUE(g.IngestMsa(msa).status().IsInvalidArgument());
}

TEST(GraphittiTest, ImagesNeedCoordinateSystem) {
  Graphitti g;
  EXPECT_TRUE(g.IngestImage("img", "atlas", "confocal", 100, 100, 10).status().IsNotFound());
  ASSERT_TRUE(g.RegisterCoordinateSystem("atlas", 3).ok());
  EXPECT_TRUE(g.IngestImage("img", "atlas", "confocal", 100, 100, 10).ok());
}

TEST(GraphittiTest, CustomTablesAndRecords) {
  Graphitti g;
  auto table = g.CreateTable(
      "experiments", relational::SchemaBuilder().Str("name", false).Int("trial").Build());
  ASSERT_TRUE(table.ok());
  auto obj = g.IngestRecord("experiments", {Value::Str("exp1"), Value::Int(3)});
  ASSERT_TRUE(obj.ok());
  EXPECT_EQ(g.GetObject(*obj)->label, "experiments/row0");
  EXPECT_TRUE(g.IngestRecord("missing", {Value::Int(1)}).status().IsNotFound());
  EXPECT_TRUE(
      g.IngestRecord("experiments", {Value::Int(5), Value::Int(1)}).status().IsTypeError());
}

TEST(GraphittiTest, SearchObjectsUsesMetadata) {
  Graphitti g;
  ASSERT_TRUE(g.IngestDnaSequence("A1", "H5N1", "s1", "ACGT").ok());
  ASSERT_TRUE(g.IngestDnaSequence("A2", "H3N2", "s1", "ACGTAC").ok());
  ASSERT_TRUE(g.IngestDnaSequence("A3", "H5N1", "s2", "AC").ok());

  auto h5 = g.SearchObjects(kTableDna, Predicate::Eq("organism", Value::Str("H5N1")));
  ASSERT_TRUE(h5.ok());
  EXPECT_EQ(h5->size(), 2u);
  auto longer =
      g.SearchObjects(kTableDna, Predicate::Compare("length", CompareOp::kGt, Value::Int(3)));
  ASSERT_TRUE(longer.ok());
  EXPECT_EQ(longer->size(), 2u);
  EXPECT_TRUE(g.SearchObjects("nope", Predicate::True()).status().IsNotFound());
}

TEST(GraphittiTest, OntologyLifecycle) {
  Graphitti g;
  const char* obo = "[Term]\nid: X:0\nname: root\n\n[Term]\nid: X:1\nname: a\nis_a: X:0\n";
  ASSERT_TRUE(g.LoadOntology("x", obo).ok());
  EXPECT_TRUE(g.LoadOntology("x", obo).status().IsAlreadyExists());
  EXPECT_TRUE(g.LoadOntology("bad", "[Term]\nname: noid\n").status().IsParseError());
  ASSERT_NE(g.GetOntology("x"), nullptr);
  EXPECT_EQ(g.GetOntology("nope"), nullptr);
  EXPECT_EQ(g.OntologyNames(), (std::vector<std::string>{"x"}));

  auto below = g.ExpandTermBelow("x:X:0");
  EXPECT_EQ(below, (std::vector<std::string>{"x:X:0", "x:X:1"}));
  // Unknown ontology or term falls back to the input.
  EXPECT_EQ(g.ExpandTermBelow("nope:T"), (std::vector<std::string>{"nope:T"}));
  EXPECT_EQ(g.ExpandTermBelow("x:MISSING"), (std::vector<std::string>{"x:MISSING"}));
  EXPECT_EQ(g.ExpandTermBelow("no-colon"), (std::vector<std::string>{"no-colon"}));
}

TEST(GraphittiTest, CommitAndAnnotationsOnObject) {
  Graphitti g;
  uint64_t obj = *g.IngestDnaSequence("A1", "H5N1", "flu:seg4", std::string(2000, 'A'));

  AnnotationBuilder b;
  b.Title("gene mark").Body("protease site").MarkInterval("flu:seg4", 100, 200, obj);
  auto id = g.Commit(b);
  ASSERT_TRUE(id.ok()) << id.status().ToString();

  EXPECT_EQ(g.AnnotationsOnObject(obj), (std::vector<annotation::AnnotationId>{*id}));
  EXPECT_TRUE(g.AnnotationsOnObject(999).empty());
  ASSERT_TRUE(g.RemoveAnnotation(*id).ok());
  EXPECT_TRUE(g.AnnotationsOnObject(obj).empty());
}

TEST(GraphittiTest, EndToEndQuery) {
  Graphitti g;
  uint64_t obj = *g.IngestDnaSequence("A1", "H5N1", "flu:seg4", std::string(2000, 'A'));
  for (int i = 0; i < 3; ++i) {
    AnnotationBuilder b;
    b.Title("ann" + std::to_string(i))
        .Body(i == 1 ? "has protease keyword" : "plain text")
        .MarkInterval("flu:seg4", i * 300, i * 300 + 100, obj);
    ASSERT_TRUE(g.Commit(b).ok());
  }
  auto r = g.Query("FIND CONTENTS WHERE { ?a CONTAINS \"protease\" }");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->items.size(), 1u);

  // TABLE clause resolves through the facade's ObjectResolver.
  auto r2 = g.Query(
      "FIND CONTENTS WHERE { ?a IS CONTENT ; ?s IS REFERENT ; ?a ANNOTATES ?s ; "
      "?o TABLE \"dna_sequences\" FILTER organism = 'H5N1' ; ?s OF ?o }");
  ASSERT_TRUE(r2.ok()) << r2.status().ToString();
  EXPECT_EQ(r2->items.size(), 3u);

  EXPECT_TRUE(g.Query("NOT A QUERY").status().IsParseError());
}

TEST(GraphittiTest, CorrelatedDataView) {
  Graphitti g;
  uint64_t obj = *g.IngestDnaSequence("A1", "H5N1", "flu:seg4", "ACGT");
  AnnotationBuilder b1;
  b1.Title("first").MarkInterval("flu:seg4", 0, 2, obj).OntologyReference("nif", "T1");
  auto id1 = g.Commit(b1);
  AnnotationBuilder b2;
  b2.Title("second").MarkInterval("flu:seg4", 0, 2, obj);  // same referent
  auto id2 = g.Commit(b2);
  ASSERT_TRUE(id1.ok());
  ASSERT_TRUE(id2.ok());

  CorrelatedData corr = g.Correlated(agraph::NodeRef::Content(*id1));
  EXPECT_EQ(corr.annotations, (std::vector<annotation::AnnotationId>{*id2}));
  EXPECT_EQ(corr.referents.size(), 1u);
  EXPECT_EQ(corr.objects, (std::vector<uint64_t>{obj}));
  EXPECT_EQ(corr.terms, (std::vector<std::string>{"nif:T1"}));

  // From the object's perspective.
  CorrelatedData obj_corr = g.Correlated(agraph::NodeRef::Object(obj));
  EXPECT_EQ(obj_corr.referents.size(), 1u);
}

TEST(GraphittiTest, StatsReflectState) {
  Graphitti g;
  SystemStats before = g.Stats();
  EXPECT_EQ(before.num_annotations, 0u);
  EXPECT_EQ(before.num_tables, 7u);

  uint64_t obj = *g.IngestDnaSequence("A1", "H5N1", "flu:seg4", "ACGT");
  AnnotationBuilder b;
  b.Title("x").MarkInterval("flu:seg4", 0, 2, obj);
  ASSERT_TRUE(g.Commit(b).ok());
  ASSERT_TRUE(g.LoadOntology("o", "[Term]\nid: A\n").ok());

  SystemStats after = g.Stats();
  EXPECT_EQ(after.num_objects, 1u);
  EXPECT_EQ(after.num_annotations, 1u);
  EXPECT_EQ(after.num_referents, 1u);
  EXPECT_EQ(after.num_interval_trees, 1u);
  EXPECT_EQ(after.interval_entries, 1u);
  EXPECT_EQ(after.num_ontologies, 1u);
  EXPECT_EQ(after.ontology_terms, 1u);
  EXPECT_GE(after.agraph_nodes, 3u);  // object + content + referent
  EXPECT_FALSE(after.ToString().empty());
  EXPECT_FALSE(g.ExportAGraph().empty());
}

TEST(GraphittiTest, DerivedCoordinateSystems) {
  Graphitti g;
  ASSERT_TRUE(g.RegisterCoordinateSystem("atlas25", 3).ok());
  ASSERT_TRUE(g.RegisterDerivedCoordinateSystem("atlas50", "atlas25", {2, 2, 2}, {0, 0, 0})
                  .ok());
  AnnotationBuilder b;
  b.Title("region").MarkRegion("atlas50", spatial::Rect::Make3D(0, 0, 0, 5, 5, 5));
  ASSERT_TRUE(g.Commit(b).ok());
  EXPECT_EQ(g.indexes().num_rtrees(), 1u);
  EXPECT_NE(g.indexes().GetRTree("atlas25"), nullptr);
}

TEST(GraphittiTest, VacuumTables) {
  Graphitti g;
  ASSERT_TRUE(g.IngestDnaSequence("A1", "x", "s", "ACGT").ok());
  g.VacuumTables();  // no tombstones: must be a no-op
  EXPECT_EQ(g.catalog().GetTable(kTableDna)->size(), 1u);
}

}  // namespace
}  // namespace core
}  // namespace graphitti
