// The virology scenario (Figures 1 & 2): an interdisciplinary Avian
// Influenza study over heterogeneous objects — DNA segments, a phylogeny,
// an interaction graph, an ontology — annotated and queried through one
// a-graph.
//
//   $ ./build/examples/influenza_study
#include <cstdio>

#include "core/graphitti.h"
#include "core/workload.h"

using graphitti::agraph::NodeRef;
using graphitti::annotation::AnnotationBuilder;
using graphitti::core::Graphitti;
using graphitti::relational::Predicate;
using graphitti::relational::Value;

int main() {
  Graphitti g;

  // --- Build the study corpus (synthetic stand-in for the real Avian
  // Influenza data; see DESIGN.md §2 for the substitution rationale).
  graphitti::core::InfluenzaParams params;
  params.num_annotations = 400;
  params.protease_fraction = 0.2;
  auto corpus = graphitti::core::GenerateInfluenzaStudy(&g, params);
  if (!corpus.ok()) {
    std::fprintf(stderr, "corpus generation failed: %s\n",
                 corpus.status().ToString().c_str());
    return 1;
  }
  std::printf("study corpus: %s\n\n", g.Stats().ToString().c_str());

  // --- The Figure 2 annotation-tab flow, step by step.
  std::printf("== annotation tab (Fig. 2) ==\n");
  // Search window: type-specific form query for H5N1 sequences.
  auto h5n1 =
      g.SearchObjects("dna_sequences", Predicate::Eq("organism", Value::Str("H5N1")));
  std::printf("search window: %zu H5N1 sequences\n", h5n1->size());

  // Mark two subintervals of the first hit and insert an ontology term.
  uint64_t target = (*h5n1)[0];
  const auto* info = g.GetObject(target);
  std::string domain =
      g.catalog().GetTable(info->table)->GetCell(info->row, "segment").as_string();
  AnnotationBuilder b;
  b.Title("HA cleavage-site comparison")
      .Creator("sandeep")
      .Subject("protein.HA")
      .Body("Polybasic protease cleavage site; virulence differs across strains.")
      .MarkIntervals(domain, {{1012, 1034}, {1102, 1120}}, target)
      .OntologyReference("flu", "FLU:1");
  std::printf("XML preview before commit:\n%s", b.BuildContentXml()->ToString().c_str());
  auto ann = g.Commit(b);
  std::printf("committed annotation %llu\n\n", static_cast<unsigned long long>(*ann));

  // --- Figure 1: indirect relatedness through shared referents.
  std::printf("== a-graph exploration (Fig. 1) ==\n");
  size_t with_relations = 0;
  size_t max_related = 0;
  for (auto id : corpus->annotations) {
    size_t n = g.graph().IndirectlyRelatedContents(NodeRef::Content(id)).size();
    if (n > 0) ++with_relations;
    max_related = std::max(max_related, n);
  }
  std::printf("annotations with indirect relations: %zu / %zu (max degree %zu)\n",
              with_relations, corpus->annotations.size(), max_related);

  // path(): how two arbitrary annotations connect through the a-graph.
  auto path = g.graph().FindPath(NodeRef::Content(corpus->annotations[0]),
                                 NodeRef::Content(corpus->annotations[1]));
  if (path.ok()) {
    std::printf("path between annotations 1 and 2: %zu hops (", path->hops());
    for (size_t i = 0; i < path->nodes.size(); ++i) {
      std::printf("%s%s", i ? " -> " : "", path->nodes[i].ToString().c_str());
    }
    std::printf(")\n");
  }

  // connect(): one connection subgraph spanning an annotation, a sequence
  // object and the phylogeny object.
  auto sg = g.graph().Connect({NodeRef::Content(corpus->annotations[0]),
                               NodeRef::Object(corpus->sequence_objects[0]),
                               NodeRef::Object(corpus->phylo_object)});
  if (sg.ok()) {
    std::printf("connect() subgraph: %zu nodes, %zu edges\n\n", sg->nodes.size(),
                sg->edges.size());
  } else {
    std::printf("connect(): %s\n\n", sg.status().ToString().c_str());
  }

  // --- Queries over data + annotations.
  std::printf("== query tab ==\n");
  auto keyword = g.Query("FIND CONTENTS WHERE { ?a CONTAINS \"protease\" } LIMIT 5 PAGE 1");
  std::printf("protease annotations: %zu total, page 1 of %zu:\n",
              keyword->items.size(), keyword->total_pages);
  for (const auto& item : keyword->Page()) {
    std::printf("  [%llu] %s\n", static_cast<unsigned long long>(item.content_id),
                item.label.c_str());
  }

  auto spatial = g.Query(
      "FIND REFERENTS WHERE { ?s TYPE interval ; ?s DOMAIN \"flu:seg0\" ; "
      "?s OVERLAPS [0, 600] } LIMIT 5");
  std::printf("marked substructures on seg0 overlapping [0,600]: %zu, e.g.:\n",
              spatial->items.size());
  for (const auto& item : spatial->Page()) {
    std::printf("  %s\n", item.substructure.ToString().c_str());
  }

  // XQuery over the annotation collection (the XML side of the store).
  auto xq = g.annotations().XQuerySearch(
      "for $a in collection()/annotation where contains($a/body, 'virulence') "
      "return $a/dc:title");
  std::printf("XQuery (virulence in body): %zu matches\n", xq->size());

  // Correlated-data viewing from the first protease hit.
  if (!keyword->items.empty()) {
    auto corr = g.Correlated(NodeRef::Content(keyword->items[0].content_id));
    std::printf(
        "correlated data around annotation %llu: %zu annotations, %zu referents, "
        "%zu objects, %zu terms\n",
        static_cast<unsigned long long>(keyword->items[0].content_id),
        corr.annotations.size(), corr.referents.size(), corr.objects.size(),
        corr.terms.size());
  }

  std::printf("\nfinal stats: %s\n", g.Stats().ToString().c_str());
  return 0;
}
