// Graphitti: the public facade. Owns every substrate (relational catalog,
// spatial indexes, XML annotation store, ontologies, a-graph) and exposes
// the three demo-tab workflows as an API:
//   - annotate: search objects, mark substructures, commit annotations,
//   - query: text queries over data + annotations,
//   - admin: statistics, export, vacuum.
//
// Thread-safety contract. A Graphitti instance may be shared across
// threads: every public method below is tagged [shared] or [exclusive]
// and takes the corresponding side of the engine's reader-writer gate
// (util::RwGate). [shared] methods run concurrently with each other;
// [exclusive] methods serialize against everything, so a reader always
// observes either the pre- or post-state of a mutation across all
// substrates at once — never a half-applied commit. The gate is
// reentrant per thread (Query may call back into FindObjects), but a
// [shared] method must never call an [exclusive] one on the same
// instance (shared->exclusive upgrade; aborts in every build mode).
//
// Two escape hatches are NOT gated and are single-threaded-use only:
//   - the substrate accessors (catalog()/indexes()/graph()/annotations())
//     hand out direct mutable references for power users and tests;
//   - GetObjectRow returns a pointer into table storage, which an
//     [exclusive] call (IngestRecord into the same table, VacuumTables)
//     may reallocate; in a multi-threaded setting use it only while
//     writers are quiescent, like the substrate accessors. GetObject and
//     GetOntology pointers are stable for the engine's lifetime (objects
//     and ontologies are registered into node-stable maps and never
//     erased).
#ifndef GRAPHITTI_CORE_GRAPHITTI_H_
#define GRAPHITTI_CORE_GRAPHITTI_H_

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "agraph/agraph.h"
#include "annotation/annotation_store.h"
#include "core/data_types.h"
#include "ontology/obo_parser.h"
#include "ontology/ontology.h"
#include "persist/env.h"
#include "persist/recovery.h"
#include "persist/wal.h"
#include "query/executor.h"
#include "relational/catalog.h"
#include "spatial/index_manager.h"
#include "util/rw_gate.h"

namespace graphitti {
namespace core {

/// Where a catalogued data object lives.
struct ObjectInfo {
  uint64_t id = 0;
  std::string table;
  relational::RowId row = 0;
  std::string label;  // e.g. "dna_sequences/AF144305"
};

/// Admin-tab statistics.
struct SystemStats {
  size_t num_tables = 0;
  size_t total_rows = 0;
  size_t num_objects = 0;
  size_t num_annotations = 0;
  size_t num_referents = 0;
  size_t num_interval_trees = 0;
  size_t num_rtrees = 0;
  size_t interval_entries = 0;
  size_t region_entries = 0;
  size_t agraph_nodes = 0;
  size_t agraph_edges = 0;
  size_t num_ontologies = 0;
  size_t ontology_terms = 0;

  std::string ToString() const;
};

/// The correlated-data view (the query tab's right panel): everything one
/// hop (through referents) around a node.
struct CorrelatedData {
  std::vector<annotation::AnnotationId> annotations;
  std::vector<annotation::ReferentId> referents;
  std::vector<uint64_t> objects;
  std::vector<std::string> terms;  // qualified ontology term names
};

/// Configuration for a crash-safe (OpenDurable) engine.
struct DurabilityOptions {
  /// WAL group-commit policy: fsync every record (default) or every
  /// `interval_ms` milliseconds (a crash may then lose the last interval's
  /// commits, but never tear one).
  persist::WalOptions wal;
  /// Filesystem seam; nullptr = the real filesystem (persist::Env::Default).
  /// Tests inject persist::FaultInjectionEnv here.
  persist::Env* env = nullptr;
  /// Build the full in-memory state during OpenDurable instead of on first
  /// access. The default (deferred hydration) makes restart I/O-bound: open
  /// reads and CRC-verifies the snapshot and truncates any torn WAL tail,
  /// then the first public call pays the decode + index/graph rebuild once.
  /// Set true to move that cost back into OpenDurable (e.g. to front-load
  /// it before serving traffic).
  bool eager_restore = false;
};

class Graphitti : public query::ObjectResolver, public query::OntologyResolver {
 public:
  /// Creates the engine with the built-in type tables registered and
  /// indexed (accession/name hash indexes).
  Graphitti();
  ~Graphitti() override = default;
  Graphitti(const Graphitti&) = delete;
  Graphitti& operator=(const Graphitti&) = delete;

  // --- Substrate access (power users / tests) ---
  //
  // UNGATED: these bypass the reader-writer gate entirely. Use them only
  // while no other thread touches the engine (setup, teardown, tests).
  // They do force deferred recovery first, so a freshly opened durable
  // engine hands out fully hydrated substrates.
  relational::Catalog& catalog() {
    (void)EnsureHydrated();
    return catalog_;
  }
  const relational::Catalog& catalog() const {
    (void)EnsureHydrated();
    return catalog_;
  }
  spatial::IndexManager& indexes() {
    (void)EnsureHydrated();
    return indexes_;
  }
  const spatial::IndexManager& indexes() const {
    (void)EnsureHydrated();
    return indexes_;
  }
  agraph::AGraph& graph() {
    (void)EnsureHydrated();
    return graph_;
  }
  const agraph::AGraph& graph() const {
    (void)EnsureHydrated();
    return graph_;
  }
  annotation::AnnotationStore& annotations() {
    (void)EnsureHydrated();
    return *store_;
  }
  const annotation::AnnotationStore& annotations() const {
    (void)EnsureHydrated();
    return *store_;
  }

  // --- Coordinate systems (for image/3D regions) ---

  /// [exclusive] Registers a canonical coordinate system.
  util::Status RegisterCoordinateSystem(std::string_view name, int dims);
  /// [exclusive] Registers a derived (scaled/offset) coordinate system.
  util::Status RegisterDerivedCoordinateSystem(
      std::string_view name, std::string_view canonical,
      const std::array<double, spatial::Rect::kMaxDims>& scale,
      const std::array<double, spatial::Rect::kMaxDims>& offset);

  // --- Ontologies (OntoQuest substrate) ---

  /// [exclusive] Parses and installs an OBO ontology under `name`.
  util::Result<const ontology::Ontology*> LoadOntology(std::string name,
                                                       std::string_view obo_text);
  /// [shared] Borrowed ontology pointer (stable until engine destruction;
  /// ontologies are never unloaded).
  const ontology::Ontology* GetOntology(std::string_view name) const;
  /// [shared] Names of all loaded ontologies.
  std::vector<std::string> OntologyNames() const;

  // --- Ingestion (the admin/registration flow). Each returns an object id.
  //     All [exclusive].
  util::Result<uint64_t> IngestDnaSequence(std::string accession, std::string organism,
                                           std::string segment, std::string residues);
  util::Result<uint64_t> IngestRnaSequence(std::string accession, std::string organism,
                                           std::string segment, std::string residues);
  util::Result<uint64_t> IngestProteinSequence(std::string accession, std::string organism,
                                               std::string protein_name,
                                               std::string residues);
  util::Result<uint64_t> IngestImage(std::string name, std::string coordinate_system,
                                     std::string modality, int64_t width, int64_t height,
                                     int64_t depth, std::vector<uint8_t> pixels = {});
  util::Result<uint64_t> IngestPhyloTree(std::string name, std::string_view newick);
  util::Result<uint64_t> IngestInteractionGraph(const InteractionGraph& graph);
  util::Result<uint64_t> IngestMsa(const Msa& msa);

  /// [exclusive] Creates a user-defined table (relational records are
  /// annotable too). The returned Table* is a substrate handle: rows
  /// inserted through it directly bypass the gate (see IngestRecord).
  util::Result<relational::Table*> CreateTable(std::string name, relational::Schema schema);
  /// [exclusive] Inserts a record into any table and registers it as a
  /// data object.
  util::Result<uint64_t> IngestRecord(std::string_view table, relational::Row row,
                                      std::string label = "");

  // --- Objects ---

  /// [shared] Object registration info; the pointer is stable for the
  /// engine's lifetime (objects are never erased).
  const ObjectInfo* GetObject(uint64_t object_id) const;
  /// [shared] Number of registered objects.
  size_t num_objects() const;
  /// [shared] The metadata row of an object (nullptr when it or its table
  /// is gone). The pointer aims into table storage that [exclusive] calls
  /// may reallocate — cross-thread users must only dereference it while
  /// writers are quiescent (single-threaded escape hatch, like the
  /// substrate accessors).
  const relational::Row* GetObjectRow(uint64_t object_id) const;

  /// [shared] The annotation tab's search window: find objects by metadata
  /// predicate.
  util::Result<std::vector<uint64_t>> SearchObjects(
      std::string_view table, const relational::Predicate& filter) const;

  // --- Annotation (the annotate tab) ---

  /// [exclusive] [durable] Commits a built annotation across all substrates
  /// atomically with respect to concurrent [shared] readers. On a durable
  /// engine the committed annotation is appended to the WAL (and fsynced
  /// per the group-commit policy) before this returns: a post-return crash
  /// recovers it.
  util::Result<annotation::AnnotationId> Commit(const annotation::AnnotationBuilder& builder);
  /// [exclusive] Commits a batch of annotations through the bulk pipeline:
  /// the gate's exclusive side is taken once for the whole batch (not per
  /// annotation), referent index insertions flush as one bulk tree build
  /// per touched domain, and keyword postings append in one pass. On
  /// success the observable state (assigned ids, query answers, a-graph
  /// shape) is identical to a loop of Commit over the same builders; on
  /// failure the batch is all-or-nothing — validation rejects the whole
  /// batch before any state changes. Readers never observe a partially
  /// applied batch. The ingest fast path for corpus loads.
  /// [durable] The whole batch is one WAL record: recovery replays it
  /// all-or-nothing, so a crash mid-anything never resurfaces a torn batch.
  util::Result<std::vector<annotation::AnnotationId>> CommitBatch(
      const std::vector<annotation::AnnotationBuilder>& builders);
  /// [exclusive] [durable] Removes an annotation (and any orphaned
  /// referents).
  util::Status RemoveAnnotation(annotation::AnnotationId id);
  /// [shared] Annotations whose referents mark the given object.
  std::vector<annotation::AnnotationId> AnnotationsOnObject(uint64_t object_id) const;

  // --- Query (the query tab) ---

  /// [shared] Parses and executes a query; concurrent Query calls from
  /// many threads scale across cores (per-thread traversal scratch).
  util::Result<query::QueryResult> Query(std::string_view query_text) const;
  util::Result<query::QueryResult> Query(std::string_view query_text,
                                         const query::ExecutorOptions& options) const;

  /// [shared] Flips `result` (produced by Query) to `page` and lazily
  /// materializes that page's connection subgraphs (GRAPH targets build
  /// subgraphs only for pages actually viewed; see
  /// query::Executor::MaterializePage).
  ///
  /// Subgraphs are built against the engine state visible at *this* call,
  /// under the gate's shared side: the call itself can never observe a
  /// half-applied commit, but an [exclusive] mutation committed between
  /// the original Query and a later page flip (or between two flips) is
  /// visible to the later flip. Flip all pages you need before mutating —
  /// or before yielding to writer threads — or a later page may disagree
  /// with what the query saw; a row whose terminal was since removed
  /// materializes as "subgraph(disconnected)". `result` itself is owned
  /// by the caller and must not be shared across threads without external
  /// synchronization.
  util::Status MaterializePage(query::QueryResult* result, size_t page) const;

  /// [shared] The correlated-data viewer: related annotations/objects/terms
  /// around a node ("what other annotations have been made on this
  /// sequence").
  CorrelatedData Correlated(agraph::NodeRef node) const;

  // --- Persistence ---

  /// [shared] Saves the full engine state (tables, objects, coordinate
  /// systems, ontologies, annotations) under `directory` (created if
  /// needed). Holds the shared side for the whole dump, so the snapshot
  /// is commit-consistent. Every file is written atomically (temp + fsync
  /// + rename + directory fsync): a crash mid-save leaves the previous
  /// save intact, never a torn file.
  util::Status SaveTo(const std::string& directory) const;
  /// Rebuilds an engine from a directory written by SaveTo — or, when the
  /// directory holds a durable engine's snapshot-<g>/wal-<g> files, by
  /// binary recovery (snapshot restore + WAL-tail replay; a torn final WAL
  /// record is truncated, mismatched snapshot/WAL generations are refused
  /// with kInternal). The returned engine is NOT durable — new mutations
  /// are not logged; use OpenDurable for that. Annotation ids and object
  /// ids are preserved; spatial indexes and the a-graph are reconstructed.
  /// (Static: gates only the fresh instance it builds.)
  static util::Result<std::unique_ptr<Graphitti>> LoadFrom(const std::string& directory);

  // --- Durability (crash safety: WAL + checkpoints) ---

  /// Opens (or creates) a crash-safe engine rooted at `directory`:
  /// recovers the newest valid snapshot, replays the WAL tail (a torn
  /// final record is a clean truncation point, not an error), attaches
  /// the WAL, and from then on logs every [durable]-tagged mutation
  /// before it returns. A directory written by legacy SaveTo is upgraded
  /// in place (XML load + immediate Checkpoint). Refuses directories
  /// whose snapshot/WAL generations cannot be recovered faithfully.
  ///
  /// Restart cost: by default the open itself is I/O-bound — it reads and
  /// CRC-verifies the snapshot and settles the WAL (torn-tail truncation,
  /// generation checks) but defers the in-memory state build to the first
  /// public call (options.eager_restore moves it back into the open).
  /// Either way, every crash-safety decision is made before this returns.
  ///
  /// NOT durable (not logged, in-memory only until the next Checkpoint):
  /// mutations through the ungated substrate accessors (catalog()/graph()/
  /// annotations()), direct Table handles (CreateTable's return, secondary
  /// CreateIndex calls), and RestoreObject.
  static util::Result<std::unique_ptr<Graphitti>> OpenDurable(
      const std::string& directory, const DurabilityOptions& options = {});

  /// [exclusive] Writes a fresh atomic snapshot (generation g+1), starts
  /// an empty WAL for it, and deletes the previous generation's files.
  /// Bounds recovery time (restart replays only the post-checkpoint tail)
  /// and heals a poisoned WAL: after any WAL I/O failure the engine
  /// refuses further durable mutations until a Checkpoint succeeds.
  util::Status Checkpoint();

  /// Whether this engine was opened through OpenDurable.
  bool IsDurable() const { return env_ != nullptr; }

  /// The current checkpoint generation (0 until the first Checkpoint).
  uint64_t generation() const { return generation_; }

  /// [exclusive] Restores an object registration with an explicit id
  /// (persistence/admin use only; fails on id collision).
  util::Status RestoreObject(uint64_t object_id, std::string_view table,
                             relational::RowId row, std::string label);

  // --- Admin tab ---

  /// [shared] Cross-substrate statistics snapshot.
  SystemStats Stats() const;
  /// [shared] Line-oriented a-graph dump.
  std::string ExportAGraph() const;
  /// [shared] Cross-store consistency check: every referent is indexed
  /// exactly once, every content/referent/object node in the a-graph has a
  /// backing record, and edge labels are well-formed. Returns the first
  /// violation found.
  util::Status ValidateIntegrity() const;
  /// [exclusive] Compacts tombstoned rows in every table. Unsafe while
  /// objects hold row ids; provided for bulk-delete admin workflows.
  void VacuumTables();

  // --- query::ObjectResolver ---
  //
  // [shared] Gated entry points in their own right, and also invoked
  // *under* an outer Query's shared hold (the gate is reentrant).
  util::Result<std::vector<uint64_t>> FindObjects(
      const std::string& table, const relational::Predicate& filter) const override;
  std::string DescribeObject(uint64_t object_id) const override;

  // --- query::OntologyResolver ---
  /// [shared] Qualified = "<ontology-name>:<term-id>", split at the first
  /// ':'. Reentrant under Query like the object resolver above.
  std::vector<std::string> ExpandTermBelow(const std::string& qualified) const override;

 private:
  /// Registers a freshly inserted row as a data object and (durable
  /// engines) logs a kObject WAL record carrying the row's values, so
  /// replay can re-insert it. The only failure mode is that WAL append.
  util::Result<uint64_t> RegisterObject(std::string_view table, relational::RowId row,
                                        std::string label);

  /// Borrowed-view context wiring shared by Query / MaterializePage.
  query::QueryContext MakeQueryContext() const;

  // --- Durability plumbing (core/durability.cc) ---

  /// Refuses durable mutations after a WAL I/O failure (wal_failed_), so
  /// the durable log never silently develops a gap; OK on non-durable
  /// engines. Call at the top of every [durable] mutator, before any
  /// state changes.
  util::Status WalGuard() const;
  /// Appends (and per policy fsyncs) one record; a failure poisons the
  /// engine (wal_failed_) until the next successful Checkpoint. No-op on
  /// non-durable engines.
  util::Status WalAppend(persist::WalRecordType type, std::string payload);
  /// Serializes complete engine state into a snapshot body.
  std::string EncodeSnapshotBody() const;
  /// Rebuilds state from a snapshot body; requires a freshly constructed
  /// engine.
  util::Status RestoreFromSnapshotBody(std::string_view body);
  /// Applies one WAL record during recovery (idempotent: duplicate
  /// deliveries of already-applied records are skipped).
  util::Status ApplyWalRecord(const persist::WalRecord& record);
  /// Shared recovery core for LoadFrom (read-only) and OpenDurable.
  static util::Result<std::unique_ptr<Graphitti>> RecoverBinary(
      persist::Env* env, const std::string& directory, const DurabilityOptions& options,
      persist::RecoveryPlan plan, bool attach_wal);

  // --- Deferred recovery (the fast-restart path) ---
  //
  // Unless DurabilityOptions::eager_restore is set, RecoverBinary performs
  // only the crash-safety work at open — CRC-verify the snapshot, read the
  // WAL and truncate its torn tail, refuse bad generations — and stashes
  // the verified bytes here. The first public call (every one starts with
  // EnsureHydrated(), *before* taking the gate) decodes the snapshot and
  // replays the WAL tail under a top-level exclusive hold. A hydration
  // failure (which a CRC-clean snapshot makes effectively a logic bug)
  // poisons the engine: the error is sticky and every subsequent
  // Status/Result entry point returns it.

  /// Stashed, already-verified recovery input awaiting first access.
  struct PendingRestore {
    bool has_snapshot = false;
    std::string snapshot_body;
    std::vector<persist::WalRecord> wal_records;
  };

  /// Fast path for the per-call hook: one relaxed-cost atomic load when the
  /// engine is hydrated (always, for non-durable/eager engines).
  util::Status EnsureHydrated() const {
    if (!hydration_pending_.load(std::memory_order_acquire)) return util::Status::OK();
    return HydrateNow();
  }
  /// Slow path: decode + replay under hydrate_mu_ and the gate's exclusive
  /// side. Must be entered before this thread holds the gate (the hook
  /// ordering above guarantees it).
  util::Status HydrateNow() const;

  /// The engine gate. Public methods lock it per the [shared]/[exclusive]
  /// tags above; private helpers and substrates assume the caller holds
  /// the right side.
  util::RwGate gate_;

  relational::Catalog catalog_;
  spatial::IndexManager indexes_;
  agraph::AGraph graph_;
  std::unique_ptr<annotation::AnnotationStore> store_;
  std::map<std::string, ontology::Ontology, std::less<>> ontologies_;

  std::map<uint64_t, ObjectInfo> objects_;
  std::map<std::string, std::map<relational::RowId, uint64_t>, std::less<>> object_by_row_;
  uint64_t next_object_id_ = 1;

  // Durability state (all inert on non-durable engines: env_ == nullptr).
  persist::Env* env_ = nullptr;  // borrowed (Default() or a test env)
  std::string durable_dir_;
  persist::WalOptions wal_options_;
  std::unique_ptr<persist::WalWriter> wal_;
  bool wal_failed_ = false;
  uint64_t generation_ = 0;

  // Deferred recovery state (mutable: hydration is triggered from const
  // entry points; see EnsureHydrated). hydration_pending_ is the lone
  // cross-thread signal; the rest is guarded by hydrate_mu_.
  mutable std::atomic<bool> hydration_pending_{false};
  mutable std::mutex hydrate_mu_;
  mutable std::unique_ptr<PendingRestore> pending_restore_;
  mutable util::Status hydrate_status_;  // sticky first hydration failure
};

}  // namespace core
}  // namespace graphitti

#endif  // GRAPHITTI_CORE_GRAPHITTI_H_
