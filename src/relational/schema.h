// Table schemas: ordered, typed, named columns.
#ifndef GRAPHITTI_RELATIONAL_SCHEMA_H_
#define GRAPHITTI_RELATIONAL_SCHEMA_H_

#include <string>
#include <string_view>
#include <vector>

#include "relational/value.h"
#include "util/status.h"

namespace graphitti {
namespace relational {

struct Column {
  std::string name;
  ValueType type = ValueType::kNull;
  bool nullable = true;
};

/// An ordered list of typed columns.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Column> columns) : columns_(std::move(columns)) {}

  const std::vector<Column>& columns() const { return columns_; }
  size_t num_columns() const { return columns_.size(); }
  const Column& column(size_t i) const { return columns_[i]; }

  /// Index of the named column, or -1.
  int FindColumn(std::string_view name) const {
    for (size_t i = 0; i < columns_.size(); ++i) {
      if (columns_[i].name == name) return static_cast<int>(i);
    }
    return -1;
  }

  /// Checks arity, nullability and per-column type agreement (null allowed
  /// for nullable columns; int accepted where double declared).
  util::Status ValidateRow(const Row& row) const;

  std::string ToString() const;

 private:
  std::vector<Column> columns_;
};

/// Fluent builder: SchemaBuilder().Str("name").Int("len").Build().
class SchemaBuilder {
 public:
  SchemaBuilder& Int(std::string name, bool nullable = true) {
    columns_.push_back({std::move(name), ValueType::kInt64, nullable});
    return *this;
  }
  SchemaBuilder& Real(std::string name, bool nullable = true) {
    columns_.push_back({std::move(name), ValueType::kDouble, nullable});
    return *this;
  }
  SchemaBuilder& Str(std::string name, bool nullable = true) {
    columns_.push_back({std::move(name), ValueType::kString, nullable});
    return *this;
  }
  SchemaBuilder& Blob(std::string name, bool nullable = true) {
    columns_.push_back({std::move(name), ValueType::kBytes, nullable});
    return *this;
  }
  Schema Build() { return Schema(std::move(columns_)); }

 private:
  std::vector<Column> columns_;
};

}  // namespace relational
}  // namespace graphitti

#endif  // GRAPHITTI_RELATIONAL_SCHEMA_H_
