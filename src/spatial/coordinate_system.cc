#include "spatial/coordinate_system.h"

namespace graphitti {
namespace spatial {

Rect CoordinateSystem::ToCanonical(const Rect& local) const {
  Rect out;
  out.dims = local.dims;
  for (int d = 0; d < local.dims; ++d) {
    double a = local.lo[d] * scale[d] + offset[d];
    double b = local.hi[d] * scale[d] + offset[d];
    out.lo[d] = std::min(a, b);  // negative scales flip the axis
    out.hi[d] = std::max(a, b);
  }
  return out;
}

util::Status CoordinateSystemRegistry::RegisterCanonical(std::string_view name, int dims) {
  if (dims < 1 || dims > Rect::kMaxDims) {
    return util::Status::InvalidArgument("dims must be in [1," +
                                         std::to_string(Rect::kMaxDims) + "]");
  }
  if (Contains(name)) {
    return util::Status::AlreadyExists("coordinate system '" + std::string(name) +
                                       "' already registered");
  }
  CoordinateSystem cs;
  cs.name = std::string(name);
  cs.canonical = cs.name;
  cs.dims = dims;
  systems_.emplace(cs.name, std::move(cs));
  return util::Status::OK();
}

util::Status CoordinateSystemRegistry::RegisterDerived(
    std::string_view name, std::string_view canonical,
    const std::array<double, Rect::kMaxDims>& scale,
    const std::array<double, Rect::kMaxDims>& offset) {
  if (Contains(name)) {
    return util::Status::AlreadyExists("coordinate system '" + std::string(name) +
                                       "' already registered");
  }
  auto it = systems_.find(canonical);
  if (it == systems_.end()) {
    return util::Status::NotFound("canonical system '" + std::string(canonical) +
                                  "' not registered");
  }
  if (it->second.canonical != it->second.name) {
    return util::Status::InvalidArgument("'" + std::string(canonical) +
                                         "' is itself derived; chain transforms first");
  }
  for (int d = 0; d < it->second.dims; ++d) {
    if (scale[static_cast<size_t>(d)] == 0.0) {
      return util::Status::InvalidArgument("zero scale on axis " + std::to_string(d));
    }
  }
  CoordinateSystem cs;
  cs.name = std::string(name);
  cs.canonical = std::string(canonical);
  cs.dims = it->second.dims;
  cs.scale = scale;
  cs.offset = offset;
  systems_.emplace(cs.name, std::move(cs));
  return util::Status::OK();
}

std::vector<CoordinateSystem> CoordinateSystemRegistry::All() const {
  std::vector<CoordinateSystem> out;
  for (const auto& [_, cs] : systems_) {
    if (cs.canonical == cs.name) out.push_back(cs);
  }
  for (const auto& [_, cs] : systems_) {
    if (cs.canonical != cs.name) out.push_back(cs);
  }
  return out;
}

util::Result<CoordinateSystem> CoordinateSystemRegistry::Get(std::string_view name) const {
  auto it = systems_.find(name);
  if (it == systems_.end()) {
    return util::Status::NotFound("coordinate system '" + std::string(name) +
                                  "' not registered");
  }
  return it->second;
}

util::Result<int> CoordinateSystemRegistry::Dims(std::string_view name) const {
  auto it = systems_.find(name);
  if (it == systems_.end()) {
    return util::Status::NotFound("coordinate system '" + std::string(name) +
                                  "' not registered");
  }
  return it->second.dims;
}

util::Result<std::pair<std::string, Rect>> CoordinateSystemRegistry::ToCanonical(
    std::string_view system, const Rect& local) const {
  GRAPHITTI_ASSIGN_OR_RETURN(CoordinateSystem cs, Get(system));
  if (local.dims != cs.dims) {
    return util::Status::InvalidArgument("rect dims " + std::to_string(local.dims) +
                                         " != system dims " + std::to_string(cs.dims));
  }
  return std::make_pair(cs.canonical, cs.ToCanonical(local));
}

}  // namespace spatial
}  // namespace graphitti
