#include "core/graphitti.h"

#include <algorithm>

#include "core/durability.h"

namespace graphitti {
namespace core {

using relational::IndexKind;
using relational::Row;
using relational::RowId;
using relational::Value;
using util::Result;
using util::Status;

namespace {

/// Resolver bound to one pinned engine version: the query executor's
/// TABLE / TERM BELOW callbacks answer from the same snapshot the rest of
/// the query runs against, not from whatever version is current when the
/// callback fires.
struct BoundResolver : public query::ObjectResolver, public query::OntologyResolver {
  BoundResolver(const Graphitti* engine, const Graphitti::EngineState* state)
      : engine_(engine), state_(state) {}

  util::Result<std::vector<uint64_t>> FindObjects(
      const std::string& table, const relational::Predicate& filter) const override {
    return engine_->SearchObjectsIn(*state_, table, filter);
  }
  std::string DescribeObject(uint64_t object_id) const override {
    return engine_->DescribeObject(object_id);  // metadata: append-only
  }
  std::vector<std::string> ExpandTermBelow(const std::string& qualified) const override {
    return engine_->ExpandTermBelow(qualified);  // metadata: append-only
  }

  const Graphitti* engine_;
  const Graphitti::EngineState* state_;
};

}  // namespace

std::string SystemStats::ToString() const {
  std::string out;
  out += "tables=" + std::to_string(num_tables) + " rows=" + std::to_string(total_rows);
  out += " objects=" + std::to_string(num_objects);
  out += " annotations=" + std::to_string(num_annotations);
  out += " referents=" + std::to_string(num_referents);
  out += " interval_trees=" + std::to_string(num_interval_trees) + "(" +
         std::to_string(interval_entries) + " entries)";
  out += " rtrees=" + std::to_string(num_rtrees) + "(" + std::to_string(region_entries) +
         " entries)";
  out += " agraph=" + std::to_string(agraph_nodes) + "n/" + std::to_string(agraph_edges) +
         "e";
  out += " ontologies=" + std::to_string(num_ontologies) + "(" +
         std::to_string(ontology_terms) + " terms)";
  return out;
}

// --- EngineState ---

Graphitti::EngineState::EngineState()
    : store(std::make_unique<annotation::AnnotationStore>(&indexes, &graph)) {}

void Graphitti::EngineState::InstallBuiltins() {
  auto create = [&](std::string_view name, relational::Schema schema,
                    std::string_view key_column) {
    auto table = catalog.CreateTable(std::string(name), std::move(schema));
    (void)(*table)->CreateIndex(key_column, IndexKind::kHash);
  };
  create(kTableDna, DnaSequenceSchema(), "accession");
  create(kTableRna, RnaSequenceSchema(), "accession");
  create(kTableProtein, ProteinSequenceSchema(), "accession");
  create(kTableImage, ImageSchema(), "name");
  create(kTablePhyloTree, PhyloTreeSchema(), "name");
  create(kTableInteractionGraph, InteractionGraphSchema(), "name");
  create(kTableMsa, MsaSchema(), "name");
  // Organism is a common search key in both sequence tables.
  (void)catalog.GetTable(kTableDna)->CreateIndex("organism", IndexKind::kHash);
  (void)catalog.GetTable(kTableRna)->CreateIndex("organism", IndexKind::kHash);
  (void)catalog.GetTable(kTableProtein)->CreateIndex("organism", IndexKind::kHash);
}

std::unique_ptr<Graphitti::EngineState> Graphitti::EngineState::Clone() const {
  auto copy = std::make_unique<EngineState>();
  copy->catalog = catalog.Clone();
  copy->indexes = indexes.Clone();
  copy->graph = graph.Clone();
  copy->store = store->Clone(&copy->indexes, &copy->graph);
  return copy;
}

Graphitti::Graphitti() {
  auto initial = std::make_unique<EngineState>();
  initial->InstallBuiltins();
  epochs_->Publish(std::move(initial), /*tag=*/0);
}

// --- Version publication plumbing ---

std::unique_ptr<Graphitti::EngineState> Graphitti::AcquireScratch() {
  if (!state_dirty_.load(std::memory_order_acquire)) {
    uint64_t tag = 0;
    std::unique_ptr<util::Versioned> standby = epochs_->TakeRecyclable(&tag);
    if (standby != nullptr) {
      auto* state = static_cast<EngineState*>(standby.get());
      bool caught_up = true;
      for (const PendingOp& pending : pending_ops_) {
        if (pending.seq <= tag) continue;  // already baked into the standby
        if (!pending.op(*state).ok()) {
          caught_up = false;  // replay diverged: discard, clone below
          break;
        }
      }
      if (caught_up) {
        standby.release();
        return std::unique_ptr<EngineState>(state);
      }
    }
  }
  // No recyclable standby (a long reader still pins it, a direct substrate
  // mutation made replay unsound, or the op log was truncated): pay one
  // full clone and restart the recycle chain from here.
  state_dirty_.store(false, std::memory_order_release);
  pending_ops_.clear();
  epochs_->DropRecyclable();
  return CurrentState()->Clone();
}

void Graphitti::PublishOp(std::unique_ptr<EngineState> next, EngineOp op) {
  const uint64_t seq = ++op_seq_;
  const uint64_t prev_tag = current_tag_;
  epochs_->Publish(std::move(next), seq);
  current_tag_ = seq;
  if (op == nullptr) {
    // Unreplayable mutation: the just-retired version can never be caught
    // up, so stop it from being recycled and drop the op log.
    pending_ops_.clear();
    epochs_->DropRecyclable();
    return;
  }
  pending_ops_.push_back({seq, std::move(op)});
  // Ops at or below the new recycle candidate's tag (the previous current)
  // are baked into it; only newer ones are needed to catch it up.
  while (!pending_ops_.empty() && pending_ops_.front().seq <= prev_tag) {
    pending_ops_.pop_front();
  }
}

// --- Coordinate systems ---

util::Status Graphitti::RegisterCoordinateSystem(std::string_view name, int dims) {
  GRAPHITTI_RETURN_NOT_OK(EnsureHydrated());
  util::MutexLock commit(commit_mu_);
  GRAPHITTI_RETURN_NOT_OK(WalGuard());
  std::unique_ptr<EngineState> scratch = AcquireScratch();
  EngineOp op = [name = std::string(name), dims](EngineState& s) {
    return s.indexes.coordinate_systems().RegisterCanonical(name, dims);
  };
  GRAPHITTI_RETURN_NOT_OK(op(*scratch));
  if (env_ != nullptr) {
    GRAPHITTI_RETURN_NOT_OK(WalAppend(persist::WalRecordType::kCoordSystem,
                                      walrec::EncodeCoordSystem(name, dims)));
  }
  PublishOp(std::move(scratch), std::move(op));
  return Status::OK();
}

util::Status Graphitti::RegisterDerivedCoordinateSystem(
    std::string_view name, std::string_view canonical,
    const std::array<double, spatial::Rect::kMaxDims>& scale,
    const std::array<double, spatial::Rect::kMaxDims>& offset) {
  GRAPHITTI_RETURN_NOT_OK(EnsureHydrated());
  util::MutexLock commit(commit_mu_);
  GRAPHITTI_RETURN_NOT_OK(WalGuard());
  std::unique_ptr<EngineState> scratch = AcquireScratch();
  EngineOp op = [name = std::string(name), canonical = std::string(canonical), scale,
                 offset](EngineState& s) {
    return s.indexes.coordinate_systems().RegisterDerived(name, canonical, scale, offset);
  };
  GRAPHITTI_RETURN_NOT_OK(op(*scratch));
  if (env_ != nullptr) {
    GRAPHITTI_RETURN_NOT_OK(
        WalAppend(persist::WalRecordType::kDerivedCoordSystem,
                  walrec::EncodeDerivedCoordSystem(name, canonical, scale, offset)));
  }
  PublishOp(std::move(scratch), std::move(op));
  return Status::OK();
}

// --- Ontologies (engine-level metadata: no version publication) ---

util::Status Graphitti::LoadOntologyInto(std::string name, std::string_view obo_text) {
  {
    util::MutexLock meta(meta_mu_);
    if (ontologies_.find(name) != ontologies_.end()) {
      return Status::AlreadyExists("ontology '" + name + "' already loaded");
    }
  }
  GRAPHITTI_ASSIGN_OR_RETURN(ontology::Ontology onto, ontology::ParseObo(obo_text, name));
  util::MutexLock meta(meta_mu_);
  auto [it, inserted] = ontologies_.emplace(std::move(name), std::move(onto));
  if (!inserted) {
    return Status::AlreadyExists("ontology '" + it->first + "' already loaded");
  }
  return Status::OK();
}

util::Result<const ontology::Ontology*> Graphitti::LoadOntology(
    std::string name, std::string_view obo_text) {
  GRAPHITTI_RETURN_NOT_OK(EnsureHydrated());
  util::MutexLock commit(commit_mu_);
  GRAPHITTI_RETURN_NOT_OK(WalGuard());
  {
    util::MutexLock meta(meta_mu_);
    if (ontologies_.find(name) != ontologies_.end()) {
      return Status::AlreadyExists("ontology '" + name + "' already loaded");
    }
  }
  GRAPHITTI_ASSIGN_OR_RETURN(ontology::Ontology onto, ontology::ParseObo(obo_text, name));
  if (env_ != nullptr) {
    // Logged (verbatim, so replay parses exactly what this call parsed)
    // BEFORE the registry insert makes it observable: a WAL failure means
    // the ontology never appears at all.
    GRAPHITTI_RETURN_NOT_OK(
        WalAppend(persist::WalRecordType::kOntology, walrec::EncodeOntology(name, obo_text)));
  }
  util::MutexLock meta(meta_mu_);
  auto [it, _] = ontologies_.emplace(std::move(name), std::move(onto));
  return &it->second;
}

const ontology::Ontology* Graphitti::GetOntology(std::string_view name) const {
  (void)EnsureHydrated();
  util::MutexLock meta(meta_mu_);
  auto it = ontologies_.find(name);
  return it == ontologies_.end() ? nullptr : &it->second;
}

std::vector<std::string> Graphitti::OntologyNames() const {
  (void)EnsureHydrated();
  util::MutexLock meta(meta_mu_);
  std::vector<std::string> out;
  out.reserve(ontologies_.size());  // performance-inefficient-vector-operation
  for (const auto& [name, _] : ontologies_) out.push_back(name);
  return out;
}

// --- Ingestion ---

util::Result<uint64_t> Graphitti::CommitRowInsert(std::unique_ptr<EngineState> scratch,
                                                  std::string table, relational::Row row,
                                                  std::string label) {
  uint64_t id = 0;
  {
    util::MutexLock meta(meta_mu_);
    id = next_object_id_++;
  }
  // The op re-derives the row id deterministically on replay; the first
  // application reports it through the shared slot.
  auto out_rid = std::make_shared<RowId>(0);
  EngineOp op = [table, row = std::move(row), label, id, out_rid](EngineState& s) -> Status {
    relational::Table* t = s.catalog.GetTable(table);
    if (t == nullptr) {
      return Status::Internal("table '" + table + "' missing during op replay");
    }
    GRAPHITTI_ASSIGN_OR_RETURN(*out_rid, t->Insert(row));
    s.graph.EnsureNode(agraph::NodeRef::Object(id), label);
    return Status::OK();
  };
  GRAPHITTI_RETURN_NOT_OK(op(*scratch));
  const RowId rid = *out_rid;

  ObjectInfo info;
  info.id = id;
  info.table = table;
  info.row = rid;
  info.label = std::move(label);
  if (env_ != nullptr) {
    // The kObject record carries the freshly inserted row's values so
    // replay can re-insert it (the row and the registration are one
    // logical mutation; see ApplyWalRecord). A failed append discards the
    // unpublished scratch: the mutation never becomes visible.
    const Row* values = scratch->catalog.GetTable(table)->Get(rid);
    if (values == nullptr) {
      return Status::Internal("object " + std::to_string(id) + " registered over row " +
                              std::to_string(rid) + " that is not in table '" + table + "'");
    }
    GRAPHITTI_RETURN_NOT_OK(
        WalAppend(persist::WalRecordType::kObject, walrec::EncodeObject(info, *values)));
  }
  {
    util::MutexLock meta(meta_mu_);
    object_by_row_[info.table][rid] = id;
    objects_.emplace(id, std::move(info));
  }
  PublishOp(std::move(scratch), std::move(op));
  return id;
}

util::Result<uint64_t> Graphitti::IngestDnaSequence(std::string accession,
                                                    std::string organism,
                                                    std::string segment,
                                                    std::string residues) {
  GRAPHITTI_RETURN_NOT_OK(EnsureHydrated());
  util::MutexLock commit(commit_mu_);
  GRAPHITTI_RETURN_NOT_OK(WalGuard());
  int64_t length = static_cast<int64_t>(residues.size());
  Row row{Value::Str(accession), Value::Str(std::move(organism)),
          Value::Str(std::move(segment)), Value::Int(length),
          Value::Str(std::move(residues))};
  return CommitRowInsert(AcquireScratch(), std::string(kTableDna), std::move(row),
                         std::string(kTableDna) + "/" + accession);
}

util::Result<uint64_t> Graphitti::IngestRnaSequence(std::string accession,
                                                    std::string organism,
                                                    std::string segment,
                                                    std::string residues) {
  GRAPHITTI_RETURN_NOT_OK(EnsureHydrated());
  util::MutexLock commit(commit_mu_);
  GRAPHITTI_RETURN_NOT_OK(WalGuard());
  int64_t length = static_cast<int64_t>(residues.size());
  Row row{Value::Str(accession), Value::Str(std::move(organism)),
          Value::Str(std::move(segment)), Value::Int(length),
          Value::Str(std::move(residues))};
  return CommitRowInsert(AcquireScratch(), std::string(kTableRna), std::move(row),
                         std::string(kTableRna) + "/" + accession);
}

util::Result<uint64_t> Graphitti::IngestProteinSequence(std::string accession,
                                                        std::string organism,
                                                        std::string protein_name,
                                                        std::string residues) {
  GRAPHITTI_RETURN_NOT_OK(EnsureHydrated());
  util::MutexLock commit(commit_mu_);
  GRAPHITTI_RETURN_NOT_OK(WalGuard());
  int64_t length = static_cast<int64_t>(residues.size());
  Row row{Value::Str(accession), Value::Str(std::move(organism)),
          Value::Str(std::move(protein_name)), Value::Int(length),
          Value::Str(std::move(residues))};
  return CommitRowInsert(AcquireScratch(), std::string(kTableProtein), std::move(row),
                         std::string(kTableProtein) + "/" + accession);
}

util::Result<uint64_t> Graphitti::IngestImage(std::string name,
                                              std::string coordinate_system,
                                              std::string modality, int64_t width,
                                              int64_t height, int64_t depth,
                                              std::vector<uint8_t> pixels) {
  GRAPHITTI_RETURN_NOT_OK(EnsureHydrated());
  util::MutexLock commit(commit_mu_);
  GRAPHITTI_RETURN_NOT_OK(WalGuard());
  std::unique_ptr<EngineState> scratch = AcquireScratch();
  if (!scratch->indexes.coordinate_systems().Contains(coordinate_system)) {
    return Status::NotFound("coordinate system '" + coordinate_system +
                            "' not registered; call RegisterCoordinateSystem first");
  }
  Row row{Value::Str(name), Value::Str(std::move(coordinate_system)),
          Value::Str(std::move(modality)), Value::Int(width), Value::Int(height),
          Value::Int(depth), Value::Blob(std::move(pixels))};
  return CommitRowInsert(std::move(scratch), std::string(kTableImage), std::move(row),
                         std::string(kTableImage) + "/" + name);
}

util::Result<uint64_t> Graphitti::IngestPhyloTree(std::string name, std::string_view newick) {
  GRAPHITTI_RETURN_NOT_OK(EnsureHydrated());
  util::MutexLock commit(commit_mu_);
  GRAPHITTI_RETURN_NOT_OK(WalGuard());
  GRAPHITTI_ASSIGN_OR_RETURN(PhyloTree tree, PhyloTree::FromNewick(newick));
  Row row{Value::Str(name), Value::Int(static_cast<int64_t>(tree.num_leaves())),
          Value::Str(std::string(newick))};
  return CommitRowInsert(AcquireScratch(), std::string(kTablePhyloTree), std::move(row),
                         std::string(kTablePhyloTree) + "/" + name);
}

util::Result<uint64_t> Graphitti::IngestInteractionGraph(const InteractionGraph& graph) {
  GRAPHITTI_RETURN_NOT_OK(EnsureHydrated());
  util::MutexLock commit(commit_mu_);
  GRAPHITTI_RETURN_NOT_OK(WalGuard());
  if (graph.name().empty()) {
    return Status::InvalidArgument("interaction graph needs a name");
  }
  Row row{Value::Str(graph.name()), Value::Int(static_cast<int64_t>(graph.num_nodes())),
          Value::Int(static_cast<int64_t>(graph.num_edges())), Value::Str(graph.ToText())};
  return CommitRowInsert(AcquireScratch(), std::string(kTableInteractionGraph),
                         std::move(row),
                         std::string(kTableInteractionGraph) + "/" + graph.name());
}

util::Result<uint64_t> Graphitti::IngestMsa(const Msa& msa) {
  GRAPHITTI_RETURN_NOT_OK(EnsureHydrated());
  util::MutexLock commit(commit_mu_);
  GRAPHITTI_RETURN_NOT_OK(WalGuard());
  if (!msa.valid()) {
    return Status::InvalidArgument("MSA rows must be non-empty and share one length");
  }
  std::string payload;
  for (const auto& [name, seq] : msa.rows) {
    payload += name + "\t" + seq + "\n";
  }
  Row row{Value::Str(msa.name), Value::Int(static_cast<int64_t>(msa.rows.size())),
          Value::Int(static_cast<int64_t>(msa.num_columns())), Value::Str(payload)};
  return CommitRowInsert(AcquireScratch(), std::string(kTableMsa), std::move(row),
                         std::string(kTableMsa) + "/" + msa.name);
}

util::Result<relational::Table*> Graphitti::CreateTable(std::string name,
                                                        relational::Schema schema) {
  GRAPHITTI_RETURN_NOT_OK(EnsureHydrated());
  util::MutexLock commit(commit_mu_);
  GRAPHITTI_RETURN_NOT_OK(WalGuard());
  // Encode before the op consumes name/schema; discarded if the catalog
  // rejects them (the non-durable common case pays nothing: env_ check).
  std::string record;
  if (env_ != nullptr) record = walrec::EncodeCreateTable(name, schema);
  std::unique_ptr<EngineState> scratch = AcquireScratch();
  EngineOp op = [name, schema](EngineState& s) {
    return s.catalog.CreateTable(name, schema).status();
  };
  GRAPHITTI_RETURN_NOT_OK(op(*scratch));
  if (env_ != nullptr) {
    GRAPHITTI_RETURN_NOT_OK(
        WalAppend(persist::WalRecordType::kCreateTable, std::move(record)));
  }
  PublishOp(std::move(scratch), std::move(op));
  // The returned handle allows direct (unversioned) inserts; make the next
  // commit clone rather than trust op replay.
  MarkStateDirty();
  return CurrentState()->catalog.GetTable(name);
}

util::Result<uint64_t> Graphitti::IngestRecord(std::string_view table, relational::Row row,
                                               std::string label) {
  GRAPHITTI_RETURN_NOT_OK(EnsureHydrated());
  util::MutexLock commit(commit_mu_);
  GRAPHITTI_RETURN_NOT_OK(WalGuard());
  std::unique_ptr<EngineState> scratch = AcquireScratch();
  relational::Table* t = scratch->catalog.GetTable(table);
  if (t == nullptr) {
    return Status::NotFound("table '" + std::string(table) + "' not found");
  }
  if (label.empty()) {
    label = std::string(table) + "/row" + std::to_string(t->NextRowId());
  }
  return CommitRowInsert(std::move(scratch), std::string(table), std::move(row),
                         std::move(label));
}

// --- Objects ---

const ObjectInfo* Graphitti::GetObject(uint64_t object_id) const {
  (void)EnsureHydrated();
  util::MutexLock meta(meta_mu_);
  auto it = objects_.find(object_id);
  return it == objects_.end() ? nullptr : &it->second;
}

size_t Graphitti::num_objects() const {
  (void)EnsureHydrated();
  util::MutexLock meta(meta_mu_);
  return objects_.size();
}

const relational::Row* Graphitti::GetObjectRow(uint64_t object_id) const {
  (void)EnsureHydrated();
  std::string table_name;
  RowId row = 0;
  {
    util::MutexLock meta(meta_mu_);
    auto it = objects_.find(object_id);
    if (it == objects_.end()) return nullptr;
    table_name = it->second.table;
    row = it->second.row;
  }
  util::EpochPin pin = epochs_->PinCurrent();
  const auto& state = *static_cast<const EngineState*>(pin.get());
  const relational::Table* table = state.catalog.GetTable(table_name);
  if (table == nullptr) return nullptr;
  return table->Get(row);
}

util::Result<std::vector<uint64_t>> Graphitti::SearchObjectsIn(
    const EngineState& state, std::string_view table,
    const relational::Predicate& filter) const {
  const relational::Table* t = state.catalog.GetTable(table);
  if (t == nullptr) {
    return Status::NotFound("table '" + std::string(table) + "' not found");
  }
  GRAPHITTI_ASSIGN_OR_RETURN(std::vector<RowId> rows, t->Select(filter));
  std::vector<uint64_t> out;
  util::MutexLock meta(meta_mu_);
  auto tit = object_by_row_.find(table);
  if (tit == object_by_row_.end()) return out;
  for (RowId r : rows) {
    auto rit = tit->second.find(r);
    if (rit != tit->second.end()) out.push_back(rit->second);
  }
  return out;
}

util::Result<std::vector<uint64_t>> Graphitti::SearchObjects(
    std::string_view table, const relational::Predicate& filter) const {
  GRAPHITTI_RETURN_NOT_OK(EnsureHydrated());
  util::EpochPin pin = epochs_->PinCurrent();
  return SearchObjectsIn(*static_cast<const EngineState*>(pin.get()), table, filter);
}

// --- Annotation ---

util::Status Graphitti::AdmitCommit(util::AdmissionController::Ticket* ticket) {
  if (admission_ == nullptr) return Status::OK();
  Status admit =
      admission_->Admit(util::AdmissionController::WorkClass::kCommit, ticket);
  if (!admit.ok()) {
    gov_counters_.resource_exhausted.fetch_add(1, std::memory_order_relaxed);
  }
  return admit;
}

util::Result<annotation::AnnotationId> Graphitti::Commit(
    const annotation::AnnotationBuilder& builder) {
  util::AdmissionController::Ticket ticket;
  GRAPHITTI_RETURN_NOT_OK(AdmitCommit(&ticket));
  GRAPHITTI_RETURN_NOT_OK(EnsureHydrated());
  util::MutexLock commit(commit_mu_);
  GRAPHITTI_RETURN_NOT_OK(WalGuard());
  std::unique_ptr<EngineState> scratch = AcquireScratch();
  auto out_id = std::make_shared<annotation::AnnotationId>(0);
  EngineOp op = [builder, out_id](EngineState& s) -> Status {
    GRAPHITTI_ASSIGN_OR_RETURN(*out_id, s.store->Commit(builder));
    return Status::OK();
  };
  GRAPHITTI_RETURN_NOT_OK(op(*scratch));
  const annotation::AnnotationId id = *out_id;
  if (env_ != nullptr) {
    GRAPHITTI_RETURN_NOT_OK(WalAppend(persist::WalRecordType::kCommitBatch,
                                      walrec::EncodeCommitBatch(*scratch->store, {id})));
  }
  PublishOp(std::move(scratch), std::move(op));
  return id;
}

util::Result<std::vector<annotation::AnnotationId>> Graphitti::CommitBatch(
    const std::vector<annotation::AnnotationBuilder>& builders) {
  util::AdmissionController::Ticket ticket;
  GRAPHITTI_RETURN_NOT_OK(AdmitCommit(&ticket));
  GRAPHITTI_RETURN_NOT_OK(EnsureHydrated());
  util::MutexLock commit(commit_mu_);
  GRAPHITTI_RETURN_NOT_OK(WalGuard());
  std::unique_ptr<EngineState> scratch = AcquireScratch();
  GRAPHITTI_ASSIGN_OR_RETURN(std::vector<annotation::AnnotationId> ids,
                             scratch->store->CommitBatch(builders));
  if (env_ != nullptr && !ids.empty()) {
    GRAPHITTI_RETURN_NOT_OK(WalAppend(persist::WalRecordType::kCommitBatch,
                                      walrec::EncodeCommitBatch(*scratch->store, ids)));
  }
  if (builders.size() > kMaxReplayBatch) {
    // Replaying a bulk load onto the standby would double its cost;
    // publish unreplayable and let the next commit pay one clone.
    PublishOp(std::move(scratch), nullptr);
  } else {
    PublishOp(std::move(scratch), [builders](EngineState& s) {
      return s.store->CommitBatch(builders).status();
    });
  }
  return ids;
}

util::Status Graphitti::RemoveAnnotation(annotation::AnnotationId id) {
  util::AdmissionController::Ticket ticket;
  GRAPHITTI_RETURN_NOT_OK(AdmitCommit(&ticket));
  GRAPHITTI_RETURN_NOT_OK(EnsureHydrated());
  util::MutexLock commit(commit_mu_);
  GRAPHITTI_RETURN_NOT_OK(WalGuard());
  std::unique_ptr<EngineState> scratch = AcquireScratch();
  EngineOp op = [id](EngineState& s) { return s.store->Remove(id); };
  GRAPHITTI_RETURN_NOT_OK(op(*scratch));
  if (env_ != nullptr) {
    GRAPHITTI_RETURN_NOT_OK(
        WalAppend(persist::WalRecordType::kRemove, walrec::EncodeRemove(id)));
  }
  PublishOp(std::move(scratch), std::move(op));
  return Status::OK();
}

std::vector<annotation::AnnotationId> Graphitti::AnnotationsOnObject(
    uint64_t object_id) const {
  (void)EnsureHydrated();
  util::EpochPin pin = epochs_->PinCurrent();
  const auto& state = *static_cast<const EngineState*>(pin.get());
  std::vector<annotation::AnnotationId> out;
  agraph::NodeRef object_node = agraph::NodeRef::Object(object_id);
  for (const agraph::NodeRef& ref : state.graph.Neighbors(object_node)) {
    if (ref.kind != agraph::NodeKind::kReferent) continue;
    for (const agraph::NodeRef& content : state.graph.Neighbors(ref)) {
      if (content.kind == agraph::NodeKind::kContent) out.push_back(content.id);
    }
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

// --- Query ---

util::Result<query::QueryResult> Graphitti::Query(std::string_view query_text) const {
  return Query(query_text, query::ExecutorOptions{});
}

util::Result<query::QueryResult> Graphitti::Query(
    std::string_view query_text, const query::ExecutorOptions& options) const {
  // Admission is decided before any snapshot is pinned, so a shed query
  // costs nothing but the admission check itself.
  util::AdmissionController::Ticket ticket;
  if (admission_ != nullptr) {
    Status admit = admission_->Admit(
        util::AdmissionController::WorkClass::kRead, &ticket);
    if (!admit.ok()) {
      gov_counters_.resource_exhausted.fetch_add(1, std::memory_order_relaxed);
      return admit;
    }
  }
  // Pin once for the whole parse + execute + first-page materialization:
  // the executor sees one commit-consistent version and is never blocked
  // by (or blocks) writers. The pin rides along on the result so page
  // flips keep answering from the same snapshot.
  GRAPHITTI_RETURN_NOT_OK(EnsureHydrated());
  util::EpochPin pin = epochs_->PinCurrent();
  const auto& state = *static_cast<const EngineState*>(pin.get());
  BoundResolver resolver(this, &state);
  query::QueryContext ctx;
  ctx.store = state.store.get();
  ctx.indexes = &state.indexes;
  ctx.graph = &state.graph;
  ctx.objects = &resolver;
  ctx.ontologies = &resolver;
  query::Executor executor(ctx, options);
  util::Result<query::QueryResult> result = executor.ExecuteText(query_text);
  if (result.ok()) {
    result->snapshot = std::move(pin);
  } else if (result.status().IsDeadlineExceeded()) {
    gov_counters_.deadline_exceeded.fetch_add(1, std::memory_order_relaxed);
  } else if (result.status().IsCancelled()) {
    gov_counters_.cancelled.fetch_add(1, std::memory_order_relaxed);
  } else if (result.status().IsResourceExhausted()) {
    gov_counters_.resource_exhausted.fetch_add(1, std::memory_order_relaxed);
  }
  return result;
}

util::Status Graphitti::MaterializePage(query::QueryResult* result, size_t page) const {
  util::AdmissionController::Ticket ticket;
  if (admission_ != nullptr) {
    Status admit = admission_->Admit(
        util::AdmissionController::WorkClass::kRead, &ticket);
    if (!admit.ok()) {
      gov_counters_.resource_exhausted.fetch_add(1, std::memory_order_relaxed);
      return admit;
    }
  }
  GRAPHITTI_RETURN_NOT_OK(EnsureHydrated());
  // Prefer the result's own pinned snapshot (results from Query always
  // carry one); fall back to the current version for hand-built results.
  util::EpochPin pin = result->snapshot ? result->snapshot : epochs_->PinCurrent();
  const auto& state = *static_cast<const EngineState*>(pin.get());
  BoundResolver resolver(this, &state);
  query::QueryContext ctx;
  ctx.store = state.store.get();
  ctx.indexes = &state.indexes;
  ctx.graph = &state.graph;
  ctx.objects = &resolver;
  ctx.ontologies = &resolver;
  return query::Executor(ctx).MaterializePage(result, page);
}

CorrelatedData Graphitti::Correlated(agraph::NodeRef node) const {
  (void)EnsureHydrated();
  util::EpochPin pin = epochs_->PinCurrent();
  const auto& state = *static_cast<const EngineState*>(pin.get());
  CorrelatedData out;
  // One-hop neighbourhood, stepping through referents to their annotations
  // and objects (the "search, browse and explore" right panel).
  std::vector<agraph::NodeRef> frontier = state.graph.Neighbors(node);
  frontier.push_back(node);
  std::vector<agraph::NodeRef> expanded;
  for (const agraph::NodeRef& n : frontier) {
    expanded.push_back(n);
    if (n.kind == agraph::NodeKind::kReferent || n.kind == agraph::NodeKind::kContent) {
      for (const agraph::NodeRef& m : state.graph.Neighbors(n)) expanded.push_back(m);
    }
  }
  std::sort(expanded.begin(), expanded.end());
  expanded.erase(std::unique(expanded.begin(), expanded.end()), expanded.end());
  for (const agraph::NodeRef& n : expanded) {
    if (n == node) continue;
    switch (n.kind) {
      case agraph::NodeKind::kContent:
        out.annotations.push_back(n.id);
        break;
      case agraph::NodeKind::kReferent:
        out.referents.push_back(n.id);
        break;
      case agraph::NodeKind::kDataObject:
        out.objects.push_back(n.id);
        break;
      case agraph::NodeKind::kOntologyTerm: {
        std::string name = state.store->TermName(n);
        if (!name.empty()) out.terms.push_back(name);
        break;
      }
    }
  }
  return out;
}

// --- Admin ---

SystemStats Graphitti::Stats() const {
  (void)EnsureHydrated();
  util::EpochPin pin = epochs_->PinCurrent();
  const auto& state = *static_cast<const EngineState*>(pin.get());
  SystemStats s;
  s.num_tables = state.catalog.num_tables();
  s.total_rows = state.catalog.TotalRows();
  s.num_annotations = state.store->size();
  s.num_referents = state.store->num_referents();
  s.num_interval_trees = state.indexes.num_interval_trees();
  s.num_rtrees = state.indexes.num_rtrees();
  s.interval_entries = state.indexes.total_interval_entries();
  s.region_entries = state.indexes.total_region_entries();
  s.agraph_nodes = state.graph.num_nodes();
  s.agraph_edges = state.graph.num_edges();
  util::MutexLock meta(meta_mu_);
  s.num_objects = objects_.size();
  s.num_ontologies = ontologies_.size();
  for (const auto& [_, onto] : ontologies_) s.ontology_terms += onto.num_terms();
  return s;
}

std::string Graphitti::ExportAGraph() const {
  (void)EnsureHydrated();
  util::EpochPin pin = epochs_->PinCurrent();
  return static_cast<const EngineState*>(pin.get())->graph.ToText();
}

void Graphitti::VacuumTables() {
  (void)EnsureHydrated();
  util::MutexLock commit(commit_mu_);
  if (!WalGuard().ok()) return;  // poisoned: refuse rather than diverge
  std::unique_ptr<EngineState> scratch = AcquireScratch();
  EngineOp op = [](EngineState& s) {
    for (const std::string& name : s.catalog.TableNames()) {
      s.catalog.GetTable(name)->Vacuum();
    }
    return Status::OK();
  };
  if (!op(*scratch).ok()) return;
  if (env_ != nullptr) {
    // Vacuum renumbers row ids, so replay must reproduce it at the same
    // point in the record sequence. A failed append poisons and discards
    // the scratch (the void signature has no error channel); subsequent
    // mutators refuse.
    if (!WalAppend(persist::WalRecordType::kVacuum, std::string()).ok()) return;
  }
  PublishOp(std::move(scratch), std::move(op));
}

// --- Resolver entry points ---

util::Result<std::vector<uint64_t>> Graphitti::FindObjects(
    const std::string& table, const relational::Predicate& filter) const {
  return SearchObjects(table, filter);
}

std::string Graphitti::DescribeObject(uint64_t object_id) const {
  (void)EnsureHydrated();
  util::MutexLock meta(meta_mu_);
  auto it = objects_.find(object_id);
  return it == objects_.end() ? ("object-" + std::to_string(object_id)) : it->second.label;
}

std::vector<std::string> Graphitti::ExpandTermBelow(const std::string& qualified) const {
  (void)EnsureHydrated();
  std::vector<std::string> out;
  size_t colon = qualified.find(':');
  if (colon == std::string::npos) {
    out.push_back(qualified);
    return out;
  }
  std::string onto_name = qualified.substr(0, colon);
  std::string term_id = qualified.substr(colon + 1);
  util::MutexLock meta(meta_mu_);
  auto oit = ontologies_.find(onto_name);
  if (oit == ontologies_.end()) {
    out.push_back(qualified);
    return out;
  }
  const ontology::Ontology* onto = &oit->second;
  ontology::TermId term = onto->FindTerm(term_id);
  if (term == ontology::kInvalidTerm) {
    out.push_back(qualified);
    return out;
  }
  ontology::RelationId is_a = onto->FindRelation("is_a");
  if (is_a == ontology::kInvalidRelation) {
    out.push_back(qualified);
    return out;
  }
  for (ontology::TermId t : onto->SubTree(term, is_a)) {
    out.push_back(onto_name + ":" + onto->term(t).id);
  }
  return out;
}

}  // namespace core
}  // namespace graphitti
