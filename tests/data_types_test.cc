#include <gtest/gtest.h>

#include "core/data_types.h"

namespace graphitti {
namespace core {
namespace {

TEST(NewickTest, ParsesSimpleTree) {
  auto tree = PhyloTree::FromNewick("(A:0.1,(B:0.2,C:0.3)D:0.4)E;");
  ASSERT_TRUE(tree.ok()) << tree.status().ToString();
  EXPECT_EQ(tree->size(), 5u);
  EXPECT_EQ(tree->num_leaves(), 3u);
  EXPECT_EQ(tree->node(0).name, "E");
  EXPECT_EQ(tree->node(0).children.size(), 2u);

  uint64_t b = tree->FindNode("B");
  ASSERT_NE(b, UINT64_MAX);
  EXPECT_TRUE(tree->node(b).is_leaf());
  EXPECT_DOUBLE_EQ(tree->node(b).branch_length, 0.2);
  uint64_t d = tree->FindNode("D");
  EXPECT_EQ(tree->node(b).parent, d);
}

TEST(NewickTest, NamesAndLengthsOptional) {
  auto tree = PhyloTree::FromNewick("((,),);");
  ASSERT_TRUE(tree.ok()) << tree.status().ToString();
  EXPECT_EQ(tree->size(), 5u);
  EXPECT_EQ(tree->num_leaves(), 3u);
  auto named = PhyloTree::FromNewick("(A,B);");
  ASSERT_TRUE(named.ok());
  EXPECT_EQ(named->num_leaves(), 2u);
}

TEST(NewickTest, SingleLeaf) {
  auto tree = PhyloTree::FromNewick("A;");
  ASSERT_TRUE(tree.ok());
  EXPECT_EQ(tree->size(), 1u);
  EXPECT_TRUE(tree->node(0).is_leaf());
}

TEST(NewickTest, RoundTrip) {
  const std::string newick = "(A:0.1,(B:0.2,C:0.3)D:0.4)E;";
  auto tree = PhyloTree::FromNewick(newick);
  ASSERT_TRUE(tree.ok());
  EXPECT_EQ(tree->ToNewick(), newick);
  auto reparsed = PhyloTree::FromNewick(tree->ToNewick());
  ASSERT_TRUE(reparsed.ok());
  EXPECT_EQ(reparsed->size(), tree->size());
}

TEST(NewickTest, CladeOf) {
  auto tree = PhyloTree::FromNewick("((A,B)X,(C,(D,E)Y)Z)R;");
  ASSERT_TRUE(tree.ok());
  uint64_t x = tree->FindNode("X");
  auto clade_x = tree->CladeOf(x);
  EXPECT_EQ(clade_x.size(), 2u);
  uint64_t z = tree->FindNode("Z");
  EXPECT_EQ(tree->CladeOf(z).size(), 3u);
  EXPECT_EQ(tree->CladeOf(0).size(), 5u);  // root clade = all leaves
  // A leaf's clade is itself.
  uint64_t a = tree->FindNode("A");
  EXPECT_EQ(tree->CladeOf(a), (std::vector<uint64_t>{a}));
  EXPECT_TRUE(tree->CladeOf(999).empty());
}

TEST(NewickTest, Leaves) {
  auto tree = PhyloTree::FromNewick("((A,B)X,C)R;");
  ASSERT_TRUE(tree.ok());
  auto leaves = tree->Leaves();
  EXPECT_EQ(leaves.size(), 3u);
  for (uint64_t l : leaves) EXPECT_TRUE(tree->node(l).is_leaf());
}

TEST(NewickTest, Errors) {
  EXPECT_TRUE(PhyloTree::FromNewick("").status().IsParseError());
  EXPECT_TRUE(PhyloTree::FromNewick("(A,B").status().IsParseError());
  EXPECT_TRUE(PhyloTree::FromNewick("(A;B);").status().IsParseError());
  EXPECT_TRUE(PhyloTree::FromNewick("(A:x,B);").status().IsParseError());
  EXPECT_TRUE(PhyloTree::FromNewick("(A,B); trailing").status().IsParseError());
}

TEST(InteractionGraphTest, NodesAndEdges) {
  InteractionGraph g("ppi");
  auto ha = g.AddNode("HA");
  auto na = g.AddNode("NA");
  auto m1 = g.AddNode("M1");
  ASSERT_TRUE(ha.ok());
  ASSERT_TRUE(g.AddEdge(*ha, *na, "binds").ok());
  ASSERT_TRUE(g.AddEdge(*na, *m1).ok());

  EXPECT_EQ(g.num_nodes(), 3u);
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_EQ(g.FindNode("NA"), *na);
  EXPECT_EQ(g.FindNode("nope"), UINT64_MAX);
  EXPECT_EQ(g.NodeName(*ha), "HA");
  EXPECT_EQ(g.Neighbors(*na), (std::vector<uint64_t>{*ha, *m1}));
}

TEST(InteractionGraphTest, Validation) {
  InteractionGraph g("x");
  ASSERT_TRUE(g.AddNode("A").ok());
  EXPECT_TRUE(g.AddNode("A").status().IsAlreadyExists());
  EXPECT_TRUE(g.AddNode("").status().IsInvalidArgument());
  EXPECT_TRUE(g.AddEdge(0, 99).IsInvalidArgument());
  EXPECT_TRUE(g.Neighbors(99).empty());
}

TEST(InteractionGraphTest, TextRoundTrip) {
  InteractionGraph g("ppi");
  uint64_t a = *g.AddNode("HA");
  uint64_t b = *g.AddNode("NA");
  ASSERT_TRUE(g.AddEdge(a, b, "binds").ok());

  std::string text = g.ToText();
  auto restored = InteractionGraph::FromText(text, "ppi");
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(restored->num_nodes(), 2u);
  EXPECT_EQ(restored->num_edges(), 1u);
  EXPECT_EQ(restored->Neighbors(0), (std::vector<uint64_t>{1}));
}

TEST(InteractionGraphTest, FromTextErrors) {
  EXPECT_TRUE(InteractionGraph::FromText("bogus line").status().IsParseError());
  EXPECT_TRUE(InteractionGraph::FromText("edge x y").status().IsParseError());
  EXPECT_TRUE(InteractionGraph::FromText("node A\nedge 0 5").status().IsInvalidArgument());
}

TEST(MsaTest, Validity) {
  Msa msa;
  msa.name = "aln";
  EXPECT_FALSE(msa.valid());
  msa.rows = {{"s1", "ACGT-"}, {"s2", "AC-TT"}};
  EXPECT_TRUE(msa.valid());
  EXPECT_EQ(msa.num_columns(), 5u);
  msa.rows.push_back({"s3", "AC"});
  EXPECT_FALSE(msa.valid());
}

TEST(SchemasTest, BuiltinSchemasHaveKeyColumns) {
  EXPECT_EQ(DnaSequenceSchema().FindColumn("accession"), 0);
  EXPECT_GE(DnaSequenceSchema().FindColumn("residues"), 0);
  EXPECT_GE(RnaSequenceSchema().FindColumn("segment"), 0);
  EXPECT_GE(ProteinSequenceSchema().FindColumn("protein_name"), 0);
  EXPECT_GE(ImageSchema().FindColumn("coordinate_system"), 0);
  EXPECT_GE(ImageSchema().FindColumn("pixels"), 0);
  EXPECT_GE(PhyloTreeSchema().FindColumn("newick"), 0);
  EXPECT_GE(InteractionGraphSchema().FindColumn("payload"), 0);
  EXPECT_GE(MsaSchema().FindColumn("num_columns"), 0);
}

}  // namespace
}  // namespace core
}  // namespace graphitti
