#include <gtest/gtest.h>

#include "relational/catalog.h"
#include "relational/table.h"
#include "util/random.h"

namespace graphitti {
namespace relational {
namespace {

Schema SeqSchema() {
  return SchemaBuilder().Str("accession", false).Str("organism").Int("length").Build();
}

Row SeqRow(const std::string& acc, const std::string& org, int64_t len) {
  return {Value::Str(acc), Value::Str(org), Value::Int(len)};
}

TEST(TableTest, InsertAndGet) {
  Table t("seq", SeqSchema());
  auto id = t.Insert(SeqRow("A1", "H5N1", 100));
  ASSERT_TRUE(id.ok());
  const Row* row = t.Get(*id);
  ASSERT_NE(row, nullptr);
  EXPECT_EQ((*row)[0].as_string(), "A1");
  EXPECT_EQ(t.size(), 1u);
}

TEST(TableTest, InsertValidatesSchema) {
  Table t("seq", SeqSchema());
  EXPECT_TRUE(t.Insert({Value::Str("A")}).status().IsInvalidArgument());
  EXPECT_TRUE(t.Insert({Value::Int(1), Value::Str("x"), Value::Int(1)})
                  .status()
                  .IsTypeError());
  EXPECT_TRUE(t.Insert({Value::Null(), Value::Str("x"), Value::Int(1)})
                  .status()
                  .IsInvalidArgument());
  EXPECT_EQ(t.size(), 0u);
}

TEST(TableTest, UpdateReplacesRow) {
  Table t("seq", SeqSchema());
  RowId id = *t.Insert(SeqRow("A1", "H5N1", 100));
  ASSERT_TRUE(t.Update(id, SeqRow("A1", "H3N2", 150)).ok());
  EXPECT_EQ((*t.Get(id))[1].as_string(), "H3N2");
  EXPECT_TRUE(t.Update(999, SeqRow("x", "y", 1)).IsNotFound());
}

TEST(TableTest, DeleteTombstones) {
  Table t("seq", SeqSchema());
  RowId id = *t.Insert(SeqRow("A1", "H5N1", 100));
  ASSERT_TRUE(t.Delete(id).ok());
  EXPECT_EQ(t.Get(id), nullptr);
  EXPECT_EQ(t.size(), 0u);
  EXPECT_TRUE(t.Delete(id).IsNotFound());
  EXPECT_TRUE(t.Update(id, SeqRow("A1", "x", 1)).IsNotFound());
}

TEST(TableTest, GetCellByName) {
  Table t("seq", SeqSchema());
  RowId id = *t.Insert(SeqRow("A1", "H5N1", 100));
  EXPECT_EQ(t.GetCell(id, "organism").as_string(), "H5N1");
  EXPECT_TRUE(t.GetCell(id, "missing").is_null());
  EXPECT_TRUE(t.GetCell(999, "organism").is_null());
}

TEST(TableTest, ScanVisitsOnlyLive) {
  Table t("seq", SeqSchema());
  RowId a = *t.Insert(SeqRow("A", "x", 1));
  RowId b = *t.Insert(SeqRow("B", "y", 2));
  (void)b;
  ASSERT_TRUE(t.Delete(a).ok());
  size_t visits = 0;
  t.Scan([&](RowId, const Row& row) {
    ++visits;
    EXPECT_EQ(row[0].as_string(), "B");
  });
  EXPECT_EQ(visits, 1u);
}

TEST(TableTest, SelectWithoutIndex) {
  Table t("seq", SeqSchema());
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(t.Insert(SeqRow("A" + std::to_string(i), i % 2 ? "H5N1" : "H3N2", i)).ok());
  }
  auto rows = t.Select(Predicate::Eq("organism", Value::Str("H5N1")));
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 5u);
}

TEST(TableTest, SelectRejectsUnknownColumn) {
  Table t("seq", SeqSchema());
  EXPECT_TRUE(t.Select(Predicate::Eq("nope", Value::Int(1))).status().IsNotFound());
}

TEST(TableTest, HashIndexAccelersEquality) {
  Table t("seq", SeqSchema());
  ASSERT_TRUE(t.CreateIndex("accession", IndexKind::kHash).ok());
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(t.Insert(SeqRow("A" + std::to_string(i), "org", i)).ok());
  }
  auto rows = t.Select(Predicate::Eq("accession", Value::Str("A42")));
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 1u);
  EXPECT_EQ((*t.Get((*rows)[0]))[2].as_int(), 42);
}

TEST(TableTest, CreateIndexBackfillsExistingRows) {
  Table t("seq", SeqSchema());
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(t.Insert(SeqRow("A" + std::to_string(i % 5), "org", i)).ok());
  }
  ASSERT_TRUE(t.CreateIndex("accession", IndexKind::kHash).ok());
  auto rows = t.Select(Predicate::Eq("accession", Value::Str("A3")));
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 4u);
}

TEST(TableTest, DuplicateIndexRejected) {
  Table t("seq", SeqSchema());
  ASSERT_TRUE(t.CreateIndex("accession", IndexKind::kHash).ok());
  EXPECT_TRUE(t.CreateIndex("accession", IndexKind::kOrdered).IsAlreadyExists());
  EXPECT_TRUE(t.CreateIndex("missing", IndexKind::kHash).IsNotFound());
  EXPECT_TRUE(t.HasIndex("accession"));
  EXPECT_FALSE(t.HasIndex("organism"));
}

TEST(TableTest, OrderedIndexRangeQueries) {
  Table t("seq", SeqSchema());
  ASSERT_TRUE(t.CreateIndex("length", IndexKind::kOrdered).ok());
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(t.Insert(SeqRow("A" + std::to_string(i), "org", i)).ok());
  }
  auto lt = t.Select(Predicate::Compare("length", CompareOp::kLt, Value::Int(10)));
  ASSERT_TRUE(lt.ok());
  EXPECT_EQ(lt->size(), 10u);
  auto ge = t.Select(Predicate::Compare("length", CompareOp::kGe, Value::Int(45)));
  ASSERT_TRUE(ge.ok());
  EXPECT_EQ(ge->size(), 5u);
  auto between = t.Select(
      Predicate::And(Predicate::Compare("length", CompareOp::kGe, Value::Int(10)),
                     Predicate::Compare("length", CompareOp::kLe, Value::Int(19))));
  ASSERT_TRUE(between.ok());
  EXPECT_EQ(between->size(), 10u);
}

TEST(TableTest, IndexMaintainedAcrossUpdateDelete) {
  Table t("seq", SeqSchema());
  ASSERT_TRUE(t.CreateIndex("accession", IndexKind::kHash).ok());
  RowId id = *t.Insert(SeqRow("OLD", "org", 1));
  ASSERT_TRUE(t.Update(id, SeqRow("NEW", "org", 1)).ok());
  EXPECT_TRUE(t.Select(Predicate::Eq("accession", Value::Str("OLD")))->empty());
  EXPECT_EQ(t.Select(Predicate::Eq("accession", Value::Str("NEW")))->size(), 1u);
  ASSERT_TRUE(t.Delete(id).ok());
  EXPECT_TRUE(t.Select(Predicate::Eq("accession", Value::Str("NEW")))->empty());
}

TEST(TableTest, SelectivityEstimates) {
  Table t("seq", SeqSchema());
  ASSERT_TRUE(t.CreateIndex("organism", IndexKind::kHash).ok());
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(t.Insert(SeqRow("A" + std::to_string(i), i < 10 ? "rare" : "common", i)).ok());
  }
  double rare = t.EstimateSelectivity(Predicate::Eq("organism", Value::Str("rare")));
  double common = t.EstimateSelectivity(Predicate::Eq("organism", Value::Str("common")));
  EXPECT_DOUBLE_EQ(rare, 0.1);
  EXPECT_DOUBLE_EQ(common, 0.9);
  EXPECT_DOUBLE_EQ(t.EstimateSelectivity(Predicate::True()), 1.0);
  double conj = t.EstimateSelectivity(
      Predicate::And(Predicate::Eq("organism", Value::Str("rare")),
                     Predicate::Eq("organism", Value::Str("common"))));
  EXPECT_NEAR(conj, 0.09, 1e-9);
}

TEST(TableTest, VacuumCompactsAndReindexes) {
  Table t("seq", SeqSchema());
  ASSERT_TRUE(t.CreateIndex("accession", IndexKind::kHash).ok());
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(t.Insert(SeqRow("A" + std::to_string(i), "org", i)).ok());
  }
  for (RowId id = 0; id < 10; id += 2) ASSERT_TRUE(t.Delete(id).ok());
  t.Vacuum();
  EXPECT_EQ(t.size(), 5u);
  auto rows = t.Select(Predicate::Eq("accession", Value::Str("A3")));
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 1u);
  EXPECT_LT((*rows)[0], 5u);  // ids compacted
}

// Property test: Select (index-accelerated) == SelectScan (oracle) over
// random data and random predicates.
class TableSelectPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(TableSelectPropertyTest, IndexedSelectMatchesScan) {
  util::Rng rng(GetParam());
  Table t("rand", SchemaBuilder().Str("s").Int("i").Real("r").Build());
  ASSERT_TRUE(t.CreateIndex("s", IndexKind::kHash).ok());
  ASSERT_TRUE(t.CreateIndex("i", IndexKind::kOrdered).ok());

  for (int n = 0; n < 300; ++n) {
    ASSERT_TRUE(t.Insert({Value::Str(std::string(1, static_cast<char>('a' + rng.Uniform(0, 5)))),
                          Value::Int(rng.Uniform(0, 50)), Value::Real(rng.NextDouble())})
                    .ok());
  }
  // Random deletes.
  for (int d = 0; d < 50; ++d) {
    (void)t.Delete(static_cast<RowId>(rng.Uniform(0, 299)));
  }

  for (int q = 0; q < 40; ++q) {
    Predicate pred = Predicate::True();
    switch (rng.Uniform(0, 3)) {
      case 0:
        pred = Predicate::Eq("s", Value::Str(std::string(1, static_cast<char>('a' + rng.Uniform(0, 5)))));
        break;
      case 1:
        pred = Predicate::Compare("i", CompareOp::kLe, Value::Int(rng.Uniform(0, 50)));
        break;
      case 2:
        pred = Predicate::And(
            Predicate::Eq("s", Value::Str(std::string(1, static_cast<char>('a' + rng.Uniform(0, 5))))),
            Predicate::Compare("i", CompareOp::kGt, Value::Int(rng.Uniform(0, 50))));
        break;
      case 3:
        pred = Predicate::Or(Predicate::Eq("i", Value::Int(rng.Uniform(0, 50))),
                             Predicate::Compare("i", CompareOp::kGe, Value::Int(45)));
        break;
    }
    auto fast = t.Select(pred);
    auto slow = t.SelectScan(pred);
    ASSERT_TRUE(fast.ok());
    ASSERT_TRUE(slow.ok());
    EXPECT_EQ(*fast, *slow) << pred.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TableSelectPropertyTest,
                         ::testing::Values(1, 7, 21, 42, 99, 1234));

// --- Catalog ---

TEST(CatalogTest, CreateGetDrop) {
  Catalog c;
  auto t = c.CreateTable("seq", SeqSchema());
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(c.GetTable("seq"), *t);
  EXPECT_EQ(c.num_tables(), 1u);
  EXPECT_TRUE(c.CreateTable("seq", SeqSchema()).status().IsAlreadyExists());
  ASSERT_TRUE(c.DropTable("seq").ok());
  EXPECT_EQ(c.GetTable("seq"), nullptr);
  EXPECT_TRUE(c.DropTable("seq").IsNotFound());
}

TEST(CatalogTest, TableNamesSortedAndTotalRows) {
  Catalog c;
  ASSERT_TRUE(c.CreateTable("zeta", SeqSchema()).ok());
  ASSERT_TRUE(c.CreateTable("alpha", SeqSchema()).ok());
  ASSERT_TRUE(c.GetTable("alpha")->Insert(SeqRow("A", "x", 1)).ok());
  ASSERT_TRUE(c.GetTable("zeta")->Insert(SeqRow("B", "y", 2)).ok());
  ASSERT_TRUE(c.GetTable("zeta")->Insert(SeqRow("C", "z", 3)).ok());
  EXPECT_EQ(c.TableNames(), (std::vector<std::string>{"alpha", "zeta"}));
  EXPECT_EQ(c.TotalRows(), 3u);
}

}  // namespace
}  // namespace relational
}  // namespace graphitti
