// Line-oriented a-graph serialization:
//   N <kind> <id> <label...>
//   E <kind> <id> <kind> <id> <label...>
#include <string>

#include "agraph/agraph.h"
#include "util/string_util.h"

namespace graphitti {
namespace agraph {

namespace {

const char* KindCode(NodeKind kind) {
  switch (kind) {
    case NodeKind::kContent:
      return "C";
    case NodeKind::kReferent:
      return "R";
    case NodeKind::kOntologyTerm:
      return "T";
    case NodeKind::kDataObject:
      return "O";
  }
  return "?";
}

util::Result<NodeKind> ParseKind(std::string_view code) {
  if (code == "C") return NodeKind::kContent;
  if (code == "R") return NodeKind::kReferent;
  if (code == "T") return NodeKind::kOntologyTerm;
  if (code == "O") return NodeKind::kDataObject;
  return util::Status::ParseError("unknown node kind code '" + std::string(code) + "'");
}

// Escapes newlines in labels (labels are free text).
std::string EscapeLabel(std::string_view label) {
  std::string out;
  for (char c : label) {
    if (c == '\n') {
      out += "\\n";
    } else if (c == '\\') {
      out += "\\\\";
    } else {
      out.push_back(c);
    }
  }
  return out;
}

std::string UnescapeLabel(std::string_view label) {
  std::string out;
  for (size_t i = 0; i < label.size(); ++i) {
    if (label[i] == '\\' && i + 1 < label.size()) {
      ++i;
      out.push_back(label[i] == 'n' ? '\n' : label[i]);
    } else {
      out.push_back(label[i]);
    }
  }
  return out;
}

}  // namespace

std::string AGraph::ToText() const {
  std::string out;
  out += "# a-graph v1\n";
  ForEachNode([&](NodeRef ref, std::string_view label) {
    out += "N ";
    out += KindCode(ref.kind);
    out += ' ';
    out += std::to_string(ref.id);
    if (!label.empty()) {
      out += ' ';
      out += EscapeLabel(label);
    }
    out += '\n';
  });
  ForEachEdge([&](const EdgeRecord& e) {
    out += "E ";
    out += KindCode(e.from.kind);
    out += ' ';
    out += std::to_string(e.from.id);
    out += ' ';
    out += KindCode(e.to.kind);
    out += ' ';
    out += std::to_string(e.to.id);
    if (!e.label.empty()) {
      out += ' ';
      out += EscapeLabel(e.label);
    }
    out += '\n';
  });
  return out;
}

util::Result<AGraph> AGraph::FromText(std::string_view text) {
  AGraph graph;
  size_t line_no = 0;
  for (const std::string& raw : util::Split(text, '\n')) {
    ++line_no;
    std::string_view line = util::Trim(raw);
    if (line.empty() || line[0] == '#') continue;
    std::vector<std::string> parts = util::SplitWhitespace(line);
    auto err = [&](const std::string& msg) {
      return util::Status::ParseError("a-graph line " + std::to_string(line_no) + ": " + msg);
    };
    if (parts[0] == "N") {
      if (parts.size() < 3) return err("node line needs kind and id");
      GRAPHITTI_ASSIGN_OR_RETURN(NodeKind kind, ParseKind(parts[1]));
      int64_t id = 0;
      if (!util::ParseInt64(parts[2], &id) || id < 0) return err("bad node id");
      std::string label;
      for (size_t i = 3; i < parts.size(); ++i) {
        if (i > 3) label += ' ';
        label += parts[i];
      }
      GRAPHITTI_RETURN_NOT_OK(
          graph.AddNode({kind, static_cast<uint64_t>(id)}, UnescapeLabel(label)));
    } else if (parts[0] == "E") {
      if (parts.size() < 5) return err("edge line needs two endpoints");
      GRAPHITTI_ASSIGN_OR_RETURN(NodeKind from_kind, ParseKind(parts[1]));
      GRAPHITTI_ASSIGN_OR_RETURN(NodeKind to_kind, ParseKind(parts[3]));
      int64_t from_id = 0, to_id = 0;
      if (!util::ParseInt64(parts[2], &from_id) || !util::ParseInt64(parts[4], &to_id)) {
        return err("bad edge endpoint id");
      }
      std::string label;
      for (size_t i = 5; i < parts.size(); ++i) {
        if (i > 5) label += ' ';
        label += parts[i];
      }
      GRAPHITTI_RETURN_NOT_OK(graph.AddEdge({from_kind, static_cast<uint64_t>(from_id)},
                                            {to_kind, static_cast<uint64_t>(to_id)},
                                            UnescapeLabel(label)));
    } else {
      return err("unknown record type '" + parts[0] + "'");
    }
  }
  return graph;
}

}  // namespace agraph
}  // namespace graphitti
