#include "core/markers.h"

#include <deque>
#include <set>

namespace graphitti {
namespace core {

using substructure::Substructure;
using util::Result;
using util::Status;

Result<Substructure> LinearIntervalMarker(std::string domain, int64_t lo, int64_t hi,
                                          int64_t sequence_length) {
  if (lo < 0 || hi < lo) {
    return Status::InvalidArgument("interval [" + std::to_string(lo) + "," +
                                   std::to_string(hi) + "] is malformed");
  }
  if (hi >= sequence_length) {
    return Status::OutOfRange("interval end " + std::to_string(hi) +
                              " exceeds sequence length " + std::to_string(sequence_length));
  }
  return Substructure::MakeInterval(std::move(domain), spatial::Interval(lo, hi));
}

Result<Substructure> BlockSetMarker(const relational::Table& table,
                                    const relational::Predicate& filter) {
  GRAPHITTI_ASSIGN_OR_RETURN(std::vector<relational::RowId> rows, table.Select(filter));
  if (rows.empty()) {
    return Status::NotFound("no rows of '" + table.name() + "' match " + filter.ToString());
  }
  return Substructure::MakeBlockSet(table.name(), std::move(rows));
}

Result<Substructure> GraphNeighborhoodMarker(const InteractionGraph& graph,
                                             std::string_view center, size_t radius,
                                             std::string domain) {
  uint64_t start = graph.FindNode(center);
  if (start == UINT64_MAX) {
    return Status::NotFound("no node '" + std::string(center) + "' in graph '" +
                            graph.name() + "'");
  }
  std::set<uint64_t> members{start};
  std::deque<std::pair<uint64_t, size_t>> queue{{start, 0}};
  while (!queue.empty()) {
    auto [node, depth] = queue.front();
    queue.pop_front();
    if (depth >= radius) continue;
    for (uint64_t nbr : graph.Neighbors(node)) {
      if (members.insert(nbr).second) queue.emplace_back(nbr, depth + 1);
    }
  }
  if (domain.empty()) domain = graph.name();
  return Substructure::MakeNodeSet(std::move(domain),
                                   std::vector<uint64_t>(members.begin(), members.end()));
}

Result<Substructure> CladeMarker(const PhyloTree& tree, std::string_view clade_root,
                                 std::string tree_domain) {
  uint64_t root = tree.FindNode(clade_root);
  if (root == UINT64_MAX) {
    return Status::NotFound("no node '" + std::string(clade_root) + "' in tree");
  }
  std::vector<uint64_t> leaves = tree.CladeOf(root);
  if (leaves.empty()) {
    return Status::Internal("clade of '" + std::string(clade_root) + "' is empty");
  }
  return Substructure::MakeTreeClade(std::move(tree_domain), std::move(leaves));
}

Result<Substructure> MsaColumnMarker(const Msa& msa, int64_t lo_col, int64_t hi_col) {
  if (!msa.valid()) {
    return Status::InvalidArgument("MSA '" + msa.name + "' is malformed");
  }
  if (lo_col < 0 || hi_col < lo_col ||
      hi_col >= static_cast<int64_t>(msa.num_columns())) {
    return Status::OutOfRange("column range [" + std::to_string(lo_col) + "," +
                              std::to_string(hi_col) + "] outside alignment of " +
                              std::to_string(msa.num_columns()) + " columns");
  }
  return Substructure::MakeInterval("msa:" + msa.name + ":cols",
                                    spatial::Interval(lo_col, hi_col));
}

}  // namespace core
}  // namespace graphitti
