// Concurrent query throughput: the multi-core numbers in the BENCH
// trajectory. Measures fig-3-style read throughput at 1/2/4/8 reader
// threads against one shared engine, (a) read-only and (b) while one
// writer thread continuously commits and removes annotations. Readers pin
// an engine version for the duration of each query (epoch-pinned
// copy-on-write publication); writers build the next version off to the
// side and publish it with a pointer swing, so neither side ever blocks
// the other.
//
// The read-only series is the scaling baseline: the per-thread traversal
// scratch and connect pools make const-graph queries embarrassingly
// parallel, so throughput should scale near-linearly until memory
// bandwidth. The with-writer series shows what a sustained annotation
// stream costs the query tab; its per-iteration p99 latency counter
// (p99_us, averaged across reader threads) against the read-only p99 is
// the churn tail-latency picture — under epoch pinning the two should be
// within a small constant of each other, where a reader-writer gate would
// let each commit stall every in-flight reader.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <memory>
#include <thread>
#include <string>
#include <vector>

#include "core/graphitti.h"
#include "core/workload.h"

namespace {

using graphitti::annotation::AnnotationBuilder;
using graphitti::core::GenerateInfluenzaStudy;
using graphitti::core::Graphitti;
using graphitti::core::InfluenzaParams;
using graphitti::util::Rng;

// One shared engine for every benchmark in this binary (threads hammer the
// same instance — that is the point). Magic-static init is thread-safe.
Graphitti& SharedInstance() {
  static Graphitti* engine = [] {
    auto* g = new Graphitti();
    InfluenzaParams params;
    params.num_annotations = 2000;
    params.protease_fraction = 0.15;
    if (!GenerateInfluenzaStudy(g, params).ok()) std::abort();
    return g;
  }();
  return *engine;
}

// One reader iteration: a keyword CONTENTS query plus a spatial REFERENTS
// window — the query-formulation panel's two common conditions.
size_t RunReaderQueries(Graphitti& g, Rng* rng) {
  size_t items = 0;
  auto contents = g.Query("FIND CONTENTS WHERE { ?a CONTAINS \"protease\" }");
  if (contents.ok()) items += contents->items.size();
  int64_t lo = rng->Uniform(0, 1500);
  auto referents = g.Query(
      "FIND REFERENTS WHERE { ?s TYPE interval ; ?s DOMAIN \"flu:seg" +
      std::to_string(rng->Uniform(0, 7)) + "\" ; ?s OVERLAPS [" + std::to_string(lo) +
      ", " + std::to_string(lo + 300) + "] }");
  if (referents.ok()) items += referents->items.size();
  return items;
}

// Per-iteration latency tail. Each reader thread records every iteration's
// wall time and reports its own p99; the counter averages across threads
// (kAvgThreads), giving the mean per-thread p99 for the run.
double P99Micros(std::vector<double>& lat_us) {
  if (lat_us.empty()) return 0.0;
  size_t idx = std::min(lat_us.size() - 1, (lat_us.size() * 99) / 100);
  std::nth_element(lat_us.begin(), lat_us.begin() + static_cast<ptrdiff_t>(idx),
                   lat_us.end());
  return lat_us[idx];
}

// One writer iteration: commit an annotation marking two fresh intervals in
// a writer-private domain, then remove it — both sides of the exclusive
// gate, with the corpus size held steady.
void RunWriterCycle(Graphitti& g, uint64_t cycle) {
  int64_t base = static_cast<int64_t>((cycle % 100000) * 16);
  AnnotationBuilder b;
  b.Title("writer-churn " + std::to_string(cycle))
      .Creator("bench-writer")
      .Body("transient churn annotation")
      .MarkInterval("bench:churn", base, base + 5)
      .MarkInterval("bench:churn", base + 6, base + 11);
  auto id = g.Commit(b);
  if (id.ok()) (void)g.RemoveAnnotation(*id);
}

// Read-only scaling: every thread is a reader.
void BM_ConcurrentQuery_ReadOnly(benchmark::State& state) {
  Graphitti& g = SharedInstance();
  Rng rng(1000 + static_cast<uint64_t>(state.thread_index()));
  size_t items = 0;
  std::vector<double> lat_us;
  for (auto _ : state) {
    auto t0 = std::chrono::steady_clock::now();
    items += RunReaderQueries(g, &rng);
    lat_us.push_back(std::chrono::duration<double, std::micro>(
                         std::chrono::steady_clock::now() - t0)
                         .count());
  }
  benchmark::DoNotOptimize(items);
  state.SetItemsProcessed(state.iterations() * 2);  // two queries per iter
  state.counters["reader_threads"] = static_cast<double>(state.threads());
  state.counters["p99_us"] =
      benchmark::Counter(P99Micros(lat_us), benchmark::Counter::kAvgThreads);
}
BENCHMARK(BM_ConcurrentQuery_ReadOnly)
    ->Threads(1)
    ->Threads(2)
    ->Threads(4)
    ->Threads(8)
    ->UseRealTime()
    ->Unit(benchmark::kMicrosecond);

// Readers with one concurrent writer. Every benchmark thread is a reader;
// a dedicated background std::thread churns commit/remove cycles for the
// whole measurement window (benchmark threads start together, so the
// writer covers the readers' timed region), making WithWriter/threads:N
// directly comparable to ReadOnly/threads:N.
void BM_ConcurrentQuery_WithWriter(benchmark::State& state) {
  Graphitti& g = SharedInstance();
  static std::atomic<int> active_readers{0};
  static std::atomic<bool> stop_writer{false};
  static std::unique_ptr<std::thread> writer;
  // Pre-loop code on every thread finishes before any thread starts
  // iterating (benchmark threads synchronize on a start barrier at the
  // top of the state loop), so the reader count and the writer are in
  // place before the first timed iteration.
  active_readers.fetch_add(1, std::memory_order_acq_rel);
  if (state.thread_index() == 0) {
    stop_writer.store(false, std::memory_order_release);
    writer = std::make_unique<std::thread>([&g] {
      uint64_t cycle = uint64_t{1} << 32;
      while (!stop_writer.load(std::memory_order_acquire)) {
        RunWriterCycle(g, cycle++);
      }
    });
  }
  Rng rng(2000 + static_cast<uint64_t>(state.thread_index()));
  size_t items = 0;
  std::vector<double> lat_us;
  for (auto _ : state) {
    auto t0 = std::chrono::steady_clock::now();
    items += RunReaderQueries(g, &rng);
    lat_us.push_back(std::chrono::duration<double, std::micro>(
                         std::chrono::steady_clock::now() - t0)
                         .count());
  }
  benchmark::DoNotOptimize(items);
  // The writer must churn until the LAST reader finishes its timed loop,
  // not just thread 0 — otherwise the tail of the other readers'
  // measurement would run writer-free and overstate their throughput.
  active_readers.fetch_sub(1, std::memory_order_acq_rel);
  if (state.thread_index() == 0) {
    while (active_readers.load(std::memory_order_acquire) > 0) {
      std::this_thread::yield();
    }
    stop_writer.store(true, std::memory_order_release);
    writer->join();
    writer.reset();
  }
  state.SetItemsProcessed(state.iterations() * 2);  // two queries per iter
  state.counters["reader_threads"] = static_cast<double>(state.threads());
  state.counters["p99_us"] =
      benchmark::Counter(P99Micros(lat_us), benchmark::Counter::kAvgThreads);
}
BENCHMARK(BM_ConcurrentQuery_WithWriter)
    ->Threads(1)
    ->Threads(2)
    ->Threads(4)
    ->Threads(8)
    ->UseRealTime()
    ->Unit(benchmark::kMicrosecond);

// Writer-only baseline: the exclusive side with no reader contention, for
// reading the with-writer numbers (how much commit/remove throughput the
// churn thread is even capable of).
void BM_ConcurrentQuery_WriterOnly(benchmark::State& state) {
  Graphitti& g = SharedInstance();
  uint64_t cycle = uint64_t{1} << 48;
  for (auto _ : state) {
    RunWriterCycle(g, cycle++);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ConcurrentQuery_WriterOnly)->Unit(benchmark::kMicrosecond);

}  // namespace
