#include <gtest/gtest.h>

#include <algorithm>

#include "agraph/agraph.h"

namespace graphitti {
namespace agraph {
namespace {

TEST(NodeRefTest, FactoriesAndOrdering) {
  NodeRef c = NodeRef::Content(5);
  NodeRef r = NodeRef::Referent(5);
  EXPECT_EQ(c.kind, NodeKind::kContent);
  EXPECT_NE(c, r);
  EXPECT_LT(c, r);  // kind ordering
  EXPECT_LT(NodeRef::Content(1), NodeRef::Content(2));
  EXPECT_EQ(c.ToString(), "content:5");
  EXPECT_EQ(NodeRef::Term(1).ToString(), "term:1");
  EXPECT_EQ(NodeRef::Object(9).ToString(), "object:9");
}

TEST(AGraphTest, AddAndRemoveNodes) {
  AGraph g;
  ASSERT_TRUE(g.AddNode(NodeRef::Content(1), "ann-1").ok());
  EXPECT_TRUE(g.HasNode(NodeRef::Content(1)));
  EXPECT_EQ(g.NodeLabel(NodeRef::Content(1)), "ann-1");
  EXPECT_TRUE(g.AddNode(NodeRef::Content(1)).IsAlreadyExists());
  EXPECT_EQ(g.num_nodes(), 1u);
  ASSERT_TRUE(g.RemoveNode(NodeRef::Content(1)).ok());
  EXPECT_FALSE(g.HasNode(NodeRef::Content(1)));
  EXPECT_TRUE(g.RemoveNode(NodeRef::Content(1)).IsNotFound());
}

TEST(AGraphTest, EnsureNodeIsIdempotent) {
  AGraph g;
  g.EnsureNode(NodeRef::Content(1), "first");
  g.EnsureNode(NodeRef::Content(1), "second");
  EXPECT_EQ(g.num_nodes(), 1u);
  EXPECT_EQ(g.NodeLabel(NodeRef::Content(1)), "first");
  // Empty label later filled in.
  g.EnsureNode(NodeRef::Content(2));
  g.EnsureNode(NodeRef::Content(2), "late-label");
  EXPECT_EQ(g.NodeLabel(NodeRef::Content(2)), "late-label");
}

TEST(AGraphTest, EdgesRequireEndpoints) {
  AGraph g;
  ASSERT_TRUE(g.AddNode(NodeRef::Content(1)).ok());
  EXPECT_TRUE(g.AddEdge(NodeRef::Content(1), NodeRef::Referent(2), "annotates").IsNotFound());
  ASSERT_TRUE(g.AddNode(NodeRef::Referent(2)).ok());
  EXPECT_TRUE(g.AddEdge(NodeRef::Content(1), NodeRef::Referent(2), "annotates").ok());
  EXPECT_TRUE(g.HasEdge(NodeRef::Content(1), NodeRef::Referent(2), "annotates"));
  EXPECT_FALSE(g.HasEdge(NodeRef::Referent(2), NodeRef::Content(1), "annotates"));
  EXPECT_EQ(g.num_edges(), 1u);
}

TEST(AGraphTest, MultigraphAllowsParallelEdges) {
  AGraph g;
  ASSERT_TRUE(g.AddNode(NodeRef::Content(1)).ok());
  ASSERT_TRUE(g.AddNode(NodeRef::Referent(2)).ok());
  ASSERT_TRUE(g.AddEdge(NodeRef::Content(1), NodeRef::Referent(2), "annotates").ok());
  ASSERT_TRUE(g.AddEdge(NodeRef::Content(1), NodeRef::Referent(2), "cites").ok());
  ASSERT_TRUE(g.AddEdge(NodeRef::Content(1), NodeRef::Referent(2), "annotates").ok());
  EXPECT_EQ(g.num_edges(), 3u);
  EXPECT_EQ(g.OutEdges(NodeRef::Content(1)).size(), 3u);
  // Removing one of the parallel "annotates" edges leaves the other.
  ASSERT_TRUE(g.RemoveEdge(NodeRef::Content(1), NodeRef::Referent(2), "annotates").ok());
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_TRUE(g.HasEdge(NodeRef::Content(1), NodeRef::Referent(2), "annotates"));
}

TEST(AGraphTest, RemoveEdgeErrors) {
  AGraph g;
  ASSERT_TRUE(g.AddNode(NodeRef::Content(1)).ok());
  ASSERT_TRUE(g.AddNode(NodeRef::Referent(2)).ok());
  EXPECT_TRUE(g.RemoveEdge(NodeRef::Content(1), NodeRef::Referent(2), "x").IsNotFound());
  ASSERT_TRUE(g.AddEdge(NodeRef::Content(1), NodeRef::Referent(2), "x").ok());
  EXPECT_TRUE(g.RemoveEdge(NodeRef::Referent(2), NodeRef::Content(1), "x").IsNotFound());
}

TEST(AGraphTest, RemoveNodeDropsIncidentEdges) {
  AGraph g;
  for (uint64_t i = 1; i <= 3; ++i) ASSERT_TRUE(g.AddNode(NodeRef::Content(i)).ok());
  ASSERT_TRUE(g.AddEdge(NodeRef::Content(1), NodeRef::Content(2), "a").ok());
  ASSERT_TRUE(g.AddEdge(NodeRef::Content(2), NodeRef::Content(3), "b").ok());
  ASSERT_TRUE(g.AddEdge(NodeRef::Content(3), NodeRef::Content(1), "c").ok());
  ASSERT_TRUE(g.RemoveNode(NodeRef::Content(2)).ok());
  EXPECT_EQ(g.num_nodes(), 2u);
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_TRUE(g.HasEdge(NodeRef::Content(3), NodeRef::Content(1), "c"));
  EXPECT_TRUE(g.OutEdges(NodeRef::Content(1)).empty());
}

TEST(AGraphTest, RemoveNodeSwapCompactionKeepsAdjacencyCorrect) {
  // Regression-style test for the swap-with-last index rewiring.
  AGraph g;
  for (uint64_t i = 0; i < 10; ++i) ASSERT_TRUE(g.AddNode(NodeRef::Content(i)).ok());
  for (uint64_t i = 0; i + 1 < 10; ++i) {
    ASSERT_TRUE(g.AddEdge(NodeRef::Content(i), NodeRef::Content(i + 1), "next").ok());
  }
  ASSERT_TRUE(g.RemoveNode(NodeRef::Content(0)).ok());  // forces a swap with node 9
  // Chain 1->2->...->9 must be intact.
  for (uint64_t i = 1; i + 1 < 10; ++i) {
    EXPECT_TRUE(g.HasEdge(NodeRef::Content(i), NodeRef::Content(i + 1), "next")) << i;
  }
  EXPECT_EQ(g.num_edges(), 8u);
}

TEST(AGraphTest, NeighborsRespectDirectionAndLabel) {
  AGraph g;
  ASSERT_TRUE(g.AddNode(NodeRef::Content(1)).ok());
  ASSERT_TRUE(g.AddNode(NodeRef::Referent(2)).ok());
  ASSERT_TRUE(g.AddNode(NodeRef::Term(3)).ok());
  ASSERT_TRUE(g.AddEdge(NodeRef::Content(1), NodeRef::Referent(2), "annotates").ok());
  ASSERT_TRUE(g.AddEdge(NodeRef::Content(1), NodeRef::Term(3), "refers-to").ok());

  auto all = g.Neighbors(NodeRef::Content(1));
  EXPECT_EQ(all.size(), 2u);
  auto annotates_only = g.Neighbors(NodeRef::Content(1), false, "annotates");
  ASSERT_EQ(annotates_only.size(), 1u);
  EXPECT_EQ(annotates_only[0], NodeRef::Referent(2));
  // Undirected view: the referent sees the content.
  auto back = g.Neighbors(NodeRef::Referent(2));
  ASSERT_EQ(back.size(), 1u);
  EXPECT_EQ(back[0], NodeRef::Content(1));
  // Directed view: the referent has no out-neighbours.
  EXPECT_TRUE(g.Neighbors(NodeRef::Referent(2), true).empty());
}

TEST(AGraphTest, NodesOfKind) {
  AGraph g;
  ASSERT_TRUE(g.AddNode(NodeRef::Content(2)).ok());
  ASSERT_TRUE(g.AddNode(NodeRef::Content(1)).ok());
  ASSERT_TRUE(g.AddNode(NodeRef::Referent(7)).ok());
  auto contents = g.NodesOfKind(NodeKind::kContent);
  ASSERT_EQ(contents.size(), 2u);
  EXPECT_EQ(contents[0], NodeRef::Content(1));  // sorted
  EXPECT_EQ(g.NodesOfKind(NodeKind::kOntologyTerm).size(), 0u);
}

TEST(AGraphTest, FindPathSimpleChain) {
  AGraph g;
  for (uint64_t i = 0; i < 5; ++i) ASSERT_TRUE(g.AddNode(NodeRef::Content(i)).ok());
  for (uint64_t i = 0; i + 1 < 5; ++i) {
    ASSERT_TRUE(g.AddEdge(NodeRef::Content(i), NodeRef::Content(i + 1), "next").ok());
  }
  auto path = g.FindPath(NodeRef::Content(0), NodeRef::Content(4));
  ASSERT_TRUE(path.ok());
  EXPECT_EQ(path->hops(), 4u);
  EXPECT_EQ(path->nodes.front(), NodeRef::Content(0));
  EXPECT_EQ(path->nodes.back(), NodeRef::Content(4));
  EXPECT_EQ(path->edge_labels, (std::vector<std::string>{"next", "next", "next", "next"}));
}

TEST(AGraphTest, FindPathRespectsDirectionOption) {
  AGraph g;
  ASSERT_TRUE(g.AddNode(NodeRef::Content(0)).ok());
  ASSERT_TRUE(g.AddNode(NodeRef::Content(1)).ok());
  ASSERT_TRUE(g.AddEdge(NodeRef::Content(1), NodeRef::Content(0), "back").ok());

  // Undirected (default): reachable.
  EXPECT_TRUE(g.FindPath(NodeRef::Content(0), NodeRef::Content(1)).ok());
  // Directed: no forward edge 0->1.
  PathOptions directed;
  directed.directed = true;
  EXPECT_TRUE(
      g.FindPath(NodeRef::Content(0), NodeRef::Content(1), directed).status().IsNotFound());
  EXPECT_TRUE(g.FindPath(NodeRef::Content(1), NodeRef::Content(0), directed).ok());
}

TEST(AGraphTest, FindPathLabelFilter) {
  AGraph g;
  for (uint64_t i = 0; i < 3; ++i) ASSERT_TRUE(g.AddNode(NodeRef::Content(i)).ok());
  ASSERT_TRUE(g.AddEdge(NodeRef::Content(0), NodeRef::Content(1), "good").ok());
  ASSERT_TRUE(g.AddEdge(NodeRef::Content(1), NodeRef::Content(2), "bad").ok());

  PathOptions only_good;
  only_good.allowed_labels = {"good"};
  EXPECT_TRUE(g.FindPath(NodeRef::Content(0), NodeRef::Content(1), only_good).ok());
  EXPECT_TRUE(
      g.FindPath(NodeRef::Content(0), NodeRef::Content(2), only_good).status().IsNotFound());
  PathOptions unknown;
  unknown.allowed_labels = {"nonexistent"};
  EXPECT_TRUE(
      g.FindPath(NodeRef::Content(0), NodeRef::Content(2), unknown).status().IsNotFound());
}

TEST(AGraphTest, FindPathMaxHops) {
  AGraph g;
  for (uint64_t i = 0; i < 5; ++i) ASSERT_TRUE(g.AddNode(NodeRef::Content(i)).ok());
  for (uint64_t i = 0; i + 1 < 5; ++i) {
    ASSERT_TRUE(g.AddEdge(NodeRef::Content(i), NodeRef::Content(i + 1), "n").ok());
  }
  PathOptions limit;
  limit.max_hops = 3;
  EXPECT_TRUE(
      g.FindPath(NodeRef::Content(0), NodeRef::Content(4), limit).status().IsNotFound());
  limit.max_hops = 4;
  EXPECT_TRUE(g.FindPath(NodeRef::Content(0), NodeRef::Content(4), limit).ok());
}

TEST(AGraphTest, FindPathIdentityAndMissing) {
  AGraph g;
  ASSERT_TRUE(g.AddNode(NodeRef::Content(0)).ok());
  auto self = g.FindPath(NodeRef::Content(0), NodeRef::Content(0));
  ASSERT_TRUE(self.ok());
  EXPECT_EQ(self->hops(), 0u);
  EXPECT_TRUE(
      g.FindPath(NodeRef::Content(0), NodeRef::Content(99)).status().IsNotFound());
  EXPECT_TRUE(
      g.FindPath(NodeRef::Content(99), NodeRef::Content(0)).status().IsNotFound());
}

TEST(AGraphTest, FindPathIsShortest) {
  AGraph g;
  // 0-1-2-3 long way, 0-4-3 short way.
  for (uint64_t i = 0; i < 5; ++i) ASSERT_TRUE(g.AddNode(NodeRef::Content(i)).ok());
  ASSERT_TRUE(g.AddEdge(NodeRef::Content(0), NodeRef::Content(1), "l").ok());
  ASSERT_TRUE(g.AddEdge(NodeRef::Content(1), NodeRef::Content(2), "l").ok());
  ASSERT_TRUE(g.AddEdge(NodeRef::Content(2), NodeRef::Content(3), "l").ok());
  ASSERT_TRUE(g.AddEdge(NodeRef::Content(0), NodeRef::Content(4), "s").ok());
  ASSERT_TRUE(g.AddEdge(NodeRef::Content(4), NodeRef::Content(3), "s").ok());
  auto path = g.FindPath(NodeRef::Content(0), NodeRef::Content(3));
  ASSERT_TRUE(path.ok());
  EXPECT_EQ(path->hops(), 2u);
}

TEST(AGraphTest, IndirectlyRelatedContents) {
  AGraph g;
  // Two annotations sharing referent 10; a third on its own referent.
  ASSERT_TRUE(g.AddNode(NodeRef::Content(1)).ok());
  ASSERT_TRUE(g.AddNode(NodeRef::Content(2)).ok());
  ASSERT_TRUE(g.AddNode(NodeRef::Content(3)).ok());
  ASSERT_TRUE(g.AddNode(NodeRef::Referent(10)).ok());
  ASSERT_TRUE(g.AddNode(NodeRef::Referent(11)).ok());
  ASSERT_TRUE(g.AddEdge(NodeRef::Content(1), NodeRef::Referent(10), "annotates").ok());
  ASSERT_TRUE(g.AddEdge(NodeRef::Content(2), NodeRef::Referent(10), "annotates").ok());
  ASSERT_TRUE(g.AddEdge(NodeRef::Content(3), NodeRef::Referent(11), "annotates").ok());

  auto related = g.IndirectlyRelatedContents(NodeRef::Content(1));
  ASSERT_EQ(related.size(), 1u);
  EXPECT_EQ(related[0], NodeRef::Content(2));
  EXPECT_TRUE(g.IndirectlyRelatedContents(NodeRef::Content(3)).empty());
  // Non-content input yields nothing.
  EXPECT_TRUE(g.IndirectlyRelatedContents(NodeRef::Referent(10)).empty());
}

TEST(AGraphTest, SerializationRoundTrip) {
  AGraph g;
  ASSERT_TRUE(g.AddNode(NodeRef::Content(1), "my annotation").ok());
  ASSERT_TRUE(g.AddNode(NodeRef::Referent(2), "interval@chr1[0,5]").ok());
  ASSERT_TRUE(g.AddNode(NodeRef::Term(3), "nif:NIF:0001").ok());
  ASSERT_TRUE(g.AddNode(NodeRef::Object(4), "dna/AF1").ok());
  ASSERT_TRUE(g.AddEdge(NodeRef::Content(1), NodeRef::Referent(2), "annotates").ok());
  ASSERT_TRUE(g.AddEdge(NodeRef::Content(1), NodeRef::Term(3), "refers-to").ok());
  ASSERT_TRUE(g.AddEdge(NodeRef::Referent(2), NodeRef::Object(4), "of-object").ok());

  std::string text = g.ToText();
  auto restored = AGraph::FromText(text);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(restored->num_nodes(), 4u);
  EXPECT_EQ(restored->num_edges(), 3u);
  EXPECT_EQ(restored->NodeLabel(NodeRef::Content(1)), "my annotation");
  EXPECT_TRUE(restored->HasEdge(NodeRef::Referent(2), NodeRef::Object(4), "of-object"));
  // Round-trip is stable.
  EXPECT_EQ(restored->ToText(), text);
}

TEST(AGraphTest, FromTextErrors) {
  EXPECT_TRUE(AGraph::FromText("N C").status().IsParseError());
  EXPECT_TRUE(AGraph::FromText("N X 1").status().IsParseError());
  EXPECT_TRUE(AGraph::FromText("N C abc").status().IsParseError());
  EXPECT_TRUE(AGraph::FromText("E C 1 R 2 lbl").status().IsNotFound());  // missing nodes
  EXPECT_TRUE(AGraph::FromText("Z").status().IsParseError());
  // Comments and blanks are fine.
  EXPECT_TRUE(AGraph::FromText("# empty\n\n").ok());
}

}  // namespace
}  // namespace agraph
}  // namespace graphitti
