// Crash-safe durability: OpenDurable / Checkpoint / recovery edge cases.
// The fault-schedule torture test lives in recovery_fault_test.cc; this file
// covers the recovery state machine on intact (or hand-damaged) directories.
#include <gtest/gtest.h>

#include <filesystem>

#include "core/graphitti.h"
#include "core/workload.h"
#include "persist/fault_env.h"
#include "persist/snapshot.h"
#include "persist/wal.h"

namespace graphitti {
namespace core {
namespace {

namespace fs = std::filesystem;
using annotation::AnnotationBuilder;
using persist::FaultInjectionEnv;

constexpr char kDir[] = "/db";

std::string WalPath(uint64_t generation) {
  return std::string(kDir) + "/" + persist::WalFileName(generation);
}

std::string SnapshotPath(uint64_t generation) {
  return std::string(kDir) + "/" + persist::SnapshotFileName(generation);
}

std::unique_ptr<Graphitti> MustOpen(FaultInjectionEnv* env) {
  DurabilityOptions opts;
  opts.env = env;
  auto g = Graphitti::OpenDurable(kDir, opts);
  EXPECT_TRUE(g.ok()) << g.status().ToString();
  return std::move(*g);
}

// Commits one interval annotation; returns its id.
annotation::AnnotationId CommitOne(Graphitti* g, const std::string& title,
                                   uint64_t object_id = 0) {
  AnnotationBuilder b;
  b.Title(title).Creator("tester").Body("body of " + title);
  b.MarkInterval("flu:seg4", 10, 20, object_id);
  auto id = g->Commit(b);
  EXPECT_TRUE(id.ok()) << id.status().ToString();
  return id.ok() ? *id : 0;
}

TEST(RecoveryTest, FreshOpenCommitsSurviveReopen) {
  FaultInjectionEnv env;
  uint64_t seq = 0;
  annotation::AnnotationId a1 = 0, a2 = 0;
  {
    auto g = MustOpen(&env);
    EXPECT_TRUE(g->IsDurable());
    EXPECT_EQ(g->generation(), 0u);
    seq = *g->IngestDnaSequence("AF1", "H5N1", "flu:seg4", "ACGTACGT");
    a1 = CommitOne(g.get(), "first", seq);
    a2 = CommitOne(g.get(), "second");
  }
  auto g = MustOpen(&env);
  EXPECT_EQ(g->Stats().num_annotations, 2u);
  ASSERT_NE(g->GetObject(seq), nullptr);
  EXPECT_EQ(g->GetObject(seq)->label, "dna_sequences/AF1");
  ASSERT_NE(g->annotations().Get(a1), nullptr);
  EXPECT_EQ(g->annotations().Get(a1)->dc.title, "first");
  ASSERT_NE(g->annotations().Get(a2), nullptr);
  EXPECT_TRUE(g->ValidateIntegrity().ok());
  // Replayed commits are fully hot: keyword search and content agree.
  EXPECT_EQ(g->annotations().SearchKeyword("first").size(), 1u);
}

TEST(RecoveryTest, RemovalReplays) {
  FaultInjectionEnv env;
  annotation::AnnotationId a1 = 0, a2 = 0;
  {
    auto g = MustOpen(&env);
    a1 = CommitOne(g.get(), "keep");
    a2 = CommitOne(g.get(), "drop");
    ASSERT_TRUE(g->RemoveAnnotation(a2).ok());
  }
  auto g = MustOpen(&env);
  EXPECT_NE(g->annotations().Get(a1), nullptr);
  EXPECT_EQ(g->annotations().Get(a2), nullptr);
  EXPECT_TRUE(g->ValidateIntegrity().ok());
}

TEST(RecoveryTest, CheckpointRoundTripsDeepState) {
  FaultInjectionEnv env;
  std::string stats_before, agraph_before;
  std::vector<annotation::AnnotationId> protease_before;
  {
    auto g = MustOpen(&env);
    InfluenzaParams params;
    params.num_annotations = 40;
    ASSERT_TRUE(GenerateInfluenzaStudy(g.get(), params).ok());
    stats_before = g->Stats().ToString();
    agraph_before = g->ExportAGraph();
    protease_before = g->annotations().SearchKeyword("protease");
    ASSERT_TRUE(g->Checkpoint().ok());
    EXPECT_EQ(g->generation(), 1u);
    // Old generation's files are gone, new pair exists.
    EXPECT_TRUE(env.FileExists(SnapshotPath(1)));
    EXPECT_TRUE(env.FileExists(WalPath(1)));
    EXPECT_FALSE(env.FileExists(WalPath(0)));
  }
  auto g = MustOpen(&env);
  EXPECT_EQ(g->generation(), 1u);
  EXPECT_EQ(g->Stats().ToString(), stats_before);
  // The snapshot restore rebuilds the a-graph in commit order: the dump
  // matches line for line.
  EXPECT_EQ(g->ExportAGraph(), agraph_before);
  EXPECT_EQ(g->annotations().SearchKeyword("protease"), protease_before);
  EXPECT_TRUE(g->ValidateIntegrity().ok());

  // Cold content hydrates on demand: an XPath-filtered query touches it.
  auto q = g->Query("FIND CONTENTS WHERE { ?a CONTAINS \"protease\" }");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->items.size(), protease_before.size());

  // New commits continue after the restored id space.
  annotation::AnnotationId next = CommitOne(g.get(), "post-restore");
  EXPECT_EQ(next, 41u);
}

TEST(RecoveryTest, SnapshotPlusWalTailRecovers) {
  FaultInjectionEnv env;
  annotation::AnnotationId pre = 0, post = 0;
  {
    auto g = MustOpen(&env);
    pre = CommitOne(g.get(), "in snapshot");
    ASSERT_TRUE(g->Checkpoint().ok());
    post = CommitOne(g.get(), "in wal tail");
  }
  auto g = MustOpen(&env);
  EXPECT_NE(g->annotations().Get(pre), nullptr);
  ASSERT_NE(g->annotations().Get(post), nullptr);
  EXPECT_EQ(g->annotations().Get(post)->dc.title, "in wal tail");
  EXPECT_TRUE(g->ValidateIntegrity().ok());
}

TEST(RecoveryTest, EmptyWalRecoversEmptyEngine) {
  FaultInjectionEnv env;
  { auto g = MustOpen(&env); }
  auto g = MustOpen(&env);
  EXPECT_EQ(g->Stats().num_annotations, 0u);
  EXPECT_TRUE(g->ValidateIntegrity().ok());
  CommitOne(g.get(), "works after empty recovery");
  EXPECT_EQ(g->Stats().num_annotations, 1u);
}

TEST(RecoveryTest, TornFirstRecordRecoversEmpty) {
  FaultInjectionEnv env;
  {
    auto g = MustOpen(&env);
    CommitOne(g.get(), "will be torn");
  }
  std::string data = *env.ReadFileToString(WalPath(0));
  ASSERT_TRUE(env.TruncateFile(WalPath(0), data.size() - 5).ok());
  auto g = MustOpen(&env);
  EXPECT_EQ(g->Stats().num_annotations, 0u);
  EXPECT_TRUE(g->ValidateIntegrity().ok());
  // The reopened WAL extends the clean (empty) prefix.
  CommitOne(g.get(), "after torn recovery");
  auto g2 = MustOpen(&env);
  EXPECT_EQ(g2->Stats().num_annotations, 1u);
}

TEST(RecoveryTest, SnapshotWithMissingWalIsCompleteState) {
  FaultInjectionEnv env;
  annotation::AnnotationId pre = 0;
  {
    auto g = MustOpen(&env);
    pre = CommitOne(g.get(), "snapshotted");
    ASSERT_TRUE(g->Checkpoint().ok());
  }
  // A crash between the snapshot rename and the new WAL's creation leaves
  // exactly this directory shape.
  ASSERT_TRUE(env.RemoveFile(WalPath(1)).ok());
  ASSERT_TRUE(env.SyncDir(kDir).ok());
  auto g = MustOpen(&env);
  EXPECT_NE(g->annotations().Get(pre), nullptr);
  EXPECT_TRUE(g->ValidateIntegrity().ok());
  // The WAL was recreated on attach; new mutations are durable again.
  CommitOne(g.get(), "after recreation");
  auto g2 = MustOpen(&env);
  EXPECT_EQ(g2->Stats().num_annotations, 2u);
}

TEST(RecoveryTest, DuplicateReplayIsIdempotent) {
  FaultInjectionEnv env;
  std::string stats_once;
  {
    auto g = MustOpen(&env);
    uint64_t seq = *g->IngestDnaSequence("AF1", "H5N1", "flu:seg4", "ACGT");
    CommitOne(g.get(), "one", seq);
    CommitOne(g.get(), "two");
    stats_once = g->Stats().ToString();
  }
  // Double every record: header + records + records. Each record is intact,
  // so replay sees every mutation delivered twice.
  std::string data = *env.ReadFileToString(WalPath(0));
  std::string doubled = data + data.substr(persist::kWalHeaderSize);
  {
    auto f = env.NewWritableFile(WalPath(0), /*truncate=*/true);
    ASSERT_TRUE(f.ok());
    ASSERT_TRUE((*f)->Append(doubled).ok());
    ASSERT_TRUE((*f)->Sync().ok());
  }
  auto g = MustOpen(&env);
  EXPECT_EQ(g->Stats().ToString(), stats_once);
  EXPECT_TRUE(g->ValidateIntegrity().ok());
}

TEST(RecoveryTest, WalWithoutItsSnapshotRefused) {
  FaultInjectionEnv env;
  {
    auto g = MustOpen(&env);
    CommitOne(g.get(), "x");
    ASSERT_TRUE(g->Checkpoint().ok());
  }
  // wal-1 depends on snapshot-1; deleting the snapshot must refuse recovery
  // (silently replaying wal-1 onto an empty engine would corrupt state).
  ASSERT_TRUE(env.RemoveFile(SnapshotPath(1)).ok());
  ASSERT_TRUE(env.SyncDir(kDir).ok());
  DurabilityOptions opts;
  opts.env = &env;
  auto g = Graphitti::OpenDurable(kDir, opts);
  ASSERT_FALSE(g.ok());
  EXPECT_TRUE(g.status().IsInternal()) << g.status().ToString();
}

TEST(RecoveryTest, GroupCommitIntervalModeLosesOnlyUnsyncedTail) {
  FaultInjectionEnv env;
  DurabilityOptions opts;
  opts.env = &env;
  opts.wal.sync_policy = persist::WalOptions::SyncPolicy::kInterval;
  opts.wal.interval_ms = 60 * 1000;
  {
    auto g = Graphitti::OpenDurable(kDir, opts);
    ASSERT_TRUE(g.ok());
    CommitOne(g->get(), "maybe lost");
    CommitOne(g->get(), "maybe lost too");
    env.Crash();
  }
  // The un-fsynced tail is gone; the synced header makes recovery clean.
  auto g = MustOpen(&env);
  EXPECT_EQ(g->Stats().num_annotations, 0u);
  EXPECT_TRUE(g->ValidateIntegrity().ok());
}

// --- Deferred hydration (the fast-restart path) ---

TEST(RecoveryTest, DeferredAndEagerRestoreAgree) {
  FaultInjectionEnv env;
  {
    auto g = MustOpen(&env);
    uint64_t seq = *g->IngestDnaSequence("AF9", "H1N1", "flu:seg4", "ACGT");
    CommitOne(g.get(), "pre-checkpoint", seq);
    ASSERT_TRUE(g->Checkpoint().ok());
    CommitOne(g.get(), "wal tail");
  }
  auto lazy = MustOpen(&env);
  DurabilityOptions eager_opts;
  eager_opts.env = &env;
  eager_opts.eager_restore = true;
  auto eager = Graphitti::OpenDurable(kDir, eager_opts);
  ASSERT_TRUE(eager.ok()) << eager.status().ToString();
  EXPECT_EQ(lazy->Stats().ToString(), (*eager)->Stats().ToString());
  EXPECT_EQ(lazy->ExportAGraph(), (*eager)->ExportAGraph());
  EXPECT_EQ(lazy->generation(), (*eager)->generation());
}

TEST(RecoveryTest, CommitBeforeAnyReadHydratesFirst) {
  FaultInjectionEnv env;
  {
    auto g = MustOpen(&env);
    CommitOne(g.get(), "already durable");
    ASSERT_TRUE(g->Checkpoint().ok());
  }
  {
    // The very first call on the reopened engine is a mutation: deferred
    // recovery must run before the commit applies and logs, so the new
    // record lands in the WAL after the recovered state — not before it.
    auto g = MustOpen(&env);
    CommitOne(g.get(), "committed pre-hydration-read");
  }
  auto g = MustOpen(&env);
  EXPECT_EQ(g->Stats().num_annotations, 2u);
  EXPECT_EQ(g->annotations().SearchKeyword("durable").size(), 1u);
  EXPECT_EQ(g->annotations().SearchKeyword("pre").size(), 1u);
  EXPECT_TRUE(g->ValidateIntegrity().ok());
}

TEST(RecoveryTest, CheckpointRightAfterOpenHydratesFirst) {
  FaultInjectionEnv env;
  {
    auto g = MustOpen(&env);
    CommitOne(g.get(), "alpha");
    CommitOne(g.get(), "beta");
  }
  {
    auto g = MustOpen(&env);
    ASSERT_TRUE(g->Checkpoint().ok());
    EXPECT_EQ(g->generation(), 1u);
  }
  auto g = MustOpen(&env);
  EXPECT_EQ(g->generation(), 1u);
  EXPECT_EQ(g->Stats().num_annotations, 2u);
  EXPECT_TRUE(g->ValidateIntegrity().ok());
}

// --- Real-filesystem cases: legacy XML upgrade and LoadFrom auto-detect ---

class RecoveryFsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("graphitti_recovery_" + std::to_string(reinterpret_cast<uintptr_t>(this)));
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }
  void TearDown() override {
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }
  fs::path dir_;
};

TEST_F(RecoveryFsTest, LegacyXmlDirectoryUpgradesInPlace) {
  std::string stats_before;
  {
    Graphitti g;
    uint64_t seq = *g.IngestDnaSequence("AF1", "H5N1", "flu:seg4", "ACGTACGT");
    AnnotationBuilder b;
    b.Title("legacy").Creator("old code").MarkInterval("flu:seg4", 1, 4, seq);
    ASSERT_TRUE(g.Commit(b).ok());
    stats_before = g.Stats().ToString();
    ASSERT_TRUE(g.SaveTo(dir_.string()).ok());
  }
  {
    auto g = Graphitti::OpenDurable(dir_.string());
    ASSERT_TRUE(g.ok()) << g.status().ToString();
    EXPECT_EQ((*g)->Stats().ToString(), stats_before);
    // Upgrade checkpointed immediately: generation 1, binary files present.
    EXPECT_EQ((*g)->generation(), 1u);
    EXPECT_TRUE(fs::exists(dir_ / persist::SnapshotFileName(1)));
    AnnotationBuilder b;
    b.Title("post-upgrade").MarkInterval("flu:seg4", 5, 9);
    ASSERT_TRUE((*g)->Commit(b).ok());
  }
  // Second open takes the binary branch (snapshot + wal tail).
  auto g = Graphitti::OpenDurable(dir_.string());
  ASSERT_TRUE(g.ok()) << g.status().ToString();
  EXPECT_EQ((*g)->Stats().num_annotations, 2u);
  EXPECT_TRUE((*g)->ValidateIntegrity().ok());
}

TEST_F(RecoveryFsTest, LoadFromAutoDetectsBinaryDirectory) {
  std::string stats_before;
  {
    auto g = Graphitti::OpenDurable(dir_.string());
    ASSERT_TRUE(g.ok()) << g.status().ToString();
    uint64_t seq = *(*g)->IngestDnaSequence("AF1", "H5N1", "flu:seg4", "ACGT");
    AnnotationBuilder b;
    b.Title("snap").MarkInterval("flu:seg4", 0, 3, seq);
    ASSERT_TRUE((*g)->Commit(b).ok());
    ASSERT_TRUE((*g)->Checkpoint().ok());
    AnnotationBuilder b2;
    b2.Title("tail").MarkInterval("flu:seg4", 4, 7);
    ASSERT_TRUE((*g)->Commit(b2).ok());
    stats_before = (*g)->Stats().ToString();
  }
  auto loaded = Graphitti::LoadFrom(dir_.string());
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ((*loaded)->Stats().ToString(), stats_before);
  EXPECT_FALSE((*loaded)->IsDurable());
  EXPECT_TRUE((*loaded)->ValidateIntegrity().ok());
}

TEST_F(RecoveryFsTest, LoadFromStillReadsLegacyXmlDirectory) {
  // Pre-durability saves keep loading through the XML path untouched.
  {
    Graphitti g;
    AnnotationBuilder b;
    b.Title("xml era").MarkInterval("flu:seg4", 2, 6);
    ASSERT_TRUE(g.Commit(b).ok());
    ASSERT_TRUE(g.SaveTo(dir_.string()).ok());
  }
  auto loaded = Graphitti::LoadFrom(dir_.string());
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ((*loaded)->Stats().num_annotations, 1u);
  EXPECT_TRUE((*loaded)->ValidateIntegrity().ok());
}

}  // namespace
}  // namespace core
}  // namespace graphitti
