// Tests for the query-language extensions: COUNT target, CONTAINEDIN
// windows, CREATOR sugar, and EXPLAIN plans.
#include <gtest/gtest.h>

#include "core/graphitti.h"
#include "query/parser.h"

namespace graphitti {
namespace query {
namespace {

using annotation::AnnotationBuilder;
using core::Graphitti;

class QueryExtensionsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(g_.RegisterCoordinateSystem("atlas", 2).ok());
    ASSERT_TRUE(
        g_.RegisterDerivedCoordinateSystem("atlas2x", "atlas", {2, 2, 1}, {0, 0, 0}).ok());
    obj_ = *g_.IngestDnaSequence("A1", "H5N1", "chr1", std::string(1000, 'A'));

    auto add = [&](const char* title, const char* creator, int64_t lo, int64_t hi) {
      AnnotationBuilder b;
      b.Title(title).Creator(creator).Body("protease text").MarkInterval("chr1", lo, hi,
                                                                         obj_);
      ASSERT_TRUE(g_.Commit(b).ok());
    };
    add("a1", "alice", 0, 50);
    add("a2", "alice", 100, 150);
    add("a3", "bob", 120, 400);

    AnnotationBuilder region1;
    region1.Title("r1").Creator("carol").Body("region note");
    region1.MarkRegion("atlas", spatial::Rect::Make2D(10, 10, 20, 20));
    ASSERT_TRUE(g_.Commit(region1).ok());
    AnnotationBuilder region2;
    region2.Title("r2").Creator("carol").Body("region note two");
    // In atlas2x local coords [30,30]-[60,60] -> canonical [60,60]-[120,120].
    region2.MarkRegion("atlas2x", spatial::Rect::Make2D(30, 30, 60, 60));
    ASSERT_TRUE(g_.Commit(region2).ok());
  }

  Graphitti g_;
  uint64_t obj_ = 0;
};

TEST_F(QueryExtensionsTest, CountTarget) {
  auto r = g_.Query("FIND COUNT ?a WHERE { ?a CONTAINS \"protease\" }");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->items.size(), 1u);
  EXPECT_EQ(r->items[0].count, 3u);
  EXPECT_EQ(r->items[0].label, "count(?a) = 3");
}

TEST_F(QueryExtensionsTest, CountDefaultsToFirstVariable) {
  auto r = g_.Query(
      "FIND COUNT WHERE { ?s IS REFERENT ; ?s DOMAIN \"chr1\" ; ?a IS CONTENT ; "
      "?a ANNOTATES ?s }");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->items[0].count, 3u);  // ?s declared first: three interval referents
}

TEST_F(QueryExtensionsTest, CountZeroWhenNoMatches) {
  auto r = g_.Query("FIND COUNT ?a WHERE { ?a CONTAINS \"nothing-here\" }");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->items[0].count, 0u);
}

TEST_F(QueryExtensionsTest, ContainedInInterval) {
  auto r = g_.Query(
      "FIND REFERENTS WHERE { ?s TYPE interval ; ?s DOMAIN \"chr1\" ; "
      "?s CONTAINEDIN [90, 200] }");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  // Only [100,150] is fully inside [90,200]; [120,400] merely overlaps.
  ASSERT_EQ(r->items.size(), 1u);
  EXPECT_EQ(r->items[0].substructure.interval(), spatial::Interval(100, 150));
}

TEST_F(QueryExtensionsTest, OverlapsVersusContainedIn) {
  auto overlaps = g_.Query(
      "FIND COUNT ?s WHERE { ?s TYPE interval ; ?s DOMAIN \"chr1\" ; "
      "?s OVERLAPS [90, 200] }");
  auto contained = g_.Query(
      "FIND COUNT ?s WHERE { ?s TYPE interval ; ?s DOMAIN \"chr1\" ; "
      "?s CONTAINEDIN [90, 200] }");
  ASSERT_TRUE(overlaps.ok());
  ASSERT_TRUE(contained.ok());
  EXPECT_EQ(overlaps->items[0].count, 2u);
  EXPECT_EQ(contained->items[0].count, 1u);
  EXPECT_LE(contained->items[0].count, overlaps->items[0].count);
}

TEST_F(QueryExtensionsTest, ContainedInRectCanonicalizesAcrossSystems) {
  // Canonical window [50,50]-[130,130] contains the atlas2x region
  // (canonical [60,120]^2) but not the atlas region ([10,20]^2).
  auto r = g_.Query(
      "FIND REFERENTS WHERE { ?s TYPE region ; ?s DOMAIN \"atlas\" ; "
      "?s CONTAINEDIN RECT [50, 50, 130, 130] }");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->items.size(), 0u);  // atlas2x referent has domain "atlas2x"

  auto r2 = g_.Query(
      "FIND REFERENTS WHERE { ?s TYPE region ; ?s DOMAIN \"atlas2x\" ; "
      "?s CONTAINEDIN RECT [25, 25, 65, 65] }");
  ASSERT_TRUE(r2.ok()) << r2.status().ToString();
  // Window given in atlas2x local coords: [25,65]^2 local = [50,130]^2
  // canonical, containing the region.
  EXPECT_EQ(r2->items.size(), 1u);
}

TEST_F(QueryExtensionsTest, CreatorSugar) {
  auto alice = g_.Query("FIND CONTENTS WHERE { ?a CREATOR \"alice\" }");
  ASSERT_TRUE(alice.ok()) << alice.status().ToString();
  EXPECT_EQ(alice->items.size(), 2u);
  auto bob = g_.Query("FIND CONTENTS WHERE { ?a CREATOR \"bob\" ; ?a CONTAINS \"protease\" }");
  ASSERT_TRUE(bob.ok());
  EXPECT_EQ(bob->items.size(), 1u);
  auto nobody = g_.Query("FIND CONTENTS WHERE { ?a CREATOR \"nobody\" }");
  ASSERT_TRUE(nobody.ok());
  EXPECT_TRUE(nobody->items.empty());
}

TEST_F(QueryExtensionsTest, ExplainRendersPlan) {
  query::QueryContext ctx;
  ctx.store = &g_.annotations();
  ctx.indexes = &g_.indexes();
  ctx.graph = &g_.graph();
  Executor ex(ctx);
  auto plan = ex.ExplainText(
      "FIND CONTENTS WHERE { ?a CONTAINS \"protease\" ; ?s IS REFERENT ; "
      "?a ANNOTATES ?s }");
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_NE(plan->find("feasible order"), std::string::npos);
  EXPECT_NE(plan->find("bind ?a"), std::string::npos);
  EXPECT_NE(plan->find("candidates: 3"), std::string::npos);
  EXPECT_NE(plan->find("rows examined"), std::string::npos);

  ExecutorOptions naive;
  naive.use_selectivity_order = false;
  Executor ex2(ctx, naive);
  auto plan2 = ex2.ExplainText("FIND CONTENTS WHERE { ?a IS CONTENT }");
  ASSERT_TRUE(plan2.ok());
  EXPECT_NE(plan2->find("declaration order"), std::string::npos);

  EXPECT_TRUE(ex.ExplainText("NOT A QUERY").status().IsParseError());
}

TEST_F(QueryExtensionsTest, ParserAcceptsNewSyntax) {
  EXPECT_TRUE(ParseQuery("FIND COUNT WHERE { ?a IS CONTENT }").ok());
  EXPECT_TRUE(
      ParseQuery("FIND REFERENTS WHERE { ?s CONTAINEDIN RECT [0,0,1,1] }").ok());
  EXPECT_TRUE(ParseQuery("FIND CONTENTS WHERE { ?a CREATOR \"x\" }").ok());
  EXPECT_TRUE(
      ParseQuery("FIND CONTENTS WHERE { ?a CREATOR }").status().IsParseError());
  // ToString round-trips.
  auto q = ParseQuery(
      "FIND COUNT ?s WHERE { ?s CONTAINEDIN [1, 5] ; ?a CREATOR \"x\" ; "
      "?a ANNOTATES ?s }");
  ASSERT_TRUE(q.ok());
  EXPECT_TRUE(ParseQuery(q->ToString()).ok()) << q->ToString();
}

}  // namespace
}  // namespace query
}  // namespace graphitti
