// EpochManager: epoch-pinned copy-on-write state publication (ROADMAP
// item 1; successor to the retired util/rw_gate.h reader-writer gate).
//
// The engine keeps its whole versioned state behind one atomic "current
// version" pointer. Writers never mutate published state: they build the
// next version off to the side (see core::Graphitti::AcquireScratch for
// the cheap way to get one), then call Publish(), which installs it with
// a single pointer swing under the manager's mutex. Readers call
// PinCurrent() on entry and operate on the pinned version for as long as
// the returned Pin lives — across a whole query, a paged result's
// lifetime, or N intervening commits. A pinned version is immutable by
// construction, so readers take no lock while reading and are never
// blocked for the duration of a commit; a long analytic read delays only
// *reclamation* of old versions, never publication of new ones.
//
// Reclamation. Each version records how many pins it holds. When a
// version is superseded and its pin count drains to zero it is either
// destroyed or — for the *most recently* retired version only — parked as
// a "recycle candidate" that the writer can adopt as scratch for the next
// commit and catch up by replaying the ops logged since it was current
// (op-replay standby; see graphitti.cc). Retiring a newer version evicts
// the previous candidate, so at most one parked version exists and memory
// is bounded by {current} + {parked standby} + {versions still pinned by
// live readers}.
//
// Contract notes:
//  - The manager must be owned by a std::shared_ptr (the engine holds it
//    that way). Pins share ownership of the manager, so a Pin held by a
//    long-lived query result keeps its snapshot valid even if the engine
//    is destroyed first.
//  - Pin is copyable (a copy re-pins the same version) and may be
//    destroyed on any thread; destruction may delete the version inline.
//  - Publish/TakeRecyclable are writer-side calls; callers serialize them
//    externally (the engine's commit mutex).
//  - Versions carry a caller-supplied monotonically increasing `tag`
//    (the engine uses its op sequence number) so a recycled standby knows
//    which logged ops it is missing.
#ifndef GRAPHITTI_UTIL_EPOCH_H_
#define GRAPHITTI_UTIL_EPOCH_H_

#include <cassert>
#include <cstdint>
#include <memory>
#include <utility>

#include "util/thread_annotations.h"

namespace graphitti {
namespace util {

/// Base class for state snapshots managed by EpochManager. Virtual dtor
/// only: the manager owns versions through this type so layers below
/// core/ (query results pin their snapshot) need not know the concrete
/// engine-state type.
class Versioned {
 public:
  virtual ~Versioned() = default;
};

class EpochManager : public std::enable_shared_from_this<EpochManager> {
  struct Node;

 public:
  EpochManager() = default;
  // Destruction races nothing by contract (the last shared_ptr owner is
  // the only thread left), but the analysis cannot know that; take the
  // lock anyway — it is uncontended and keeps the walk provable.
  ~EpochManager() {
    MutexLock lock(mu_);
    Node* n = head_;
    while (n != nullptr) {
      Node* next = n->next;
      delete n;
      n = next;
    }
  }
  EpochManager(const EpochManager&) = delete;
  EpochManager& operator=(const EpochManager&) = delete;

  /// RAII pin on one published version. Copyable; copies re-pin. Safe to
  /// destroy on a different thread than the one that pinned.
  class Pin {
   public:
    Pin() = default;
    Pin(const Pin& other) : mgr_(other.mgr_), node_(other.node_) {
      if (node_ != nullptr) mgr_->Ref(node_);
    }
    Pin(Pin&& other) noexcept : mgr_(other.mgr_), node_(other.node_) {
      other.mgr_ = nullptr;
      other.node_ = nullptr;
    }
    Pin& operator=(Pin other) noexcept {
      std::swap(mgr_, other.mgr_);
      std::swap(node_, other.node_);
      return *this;
    }
    ~Pin() { reset(); }

    void reset() {
      if (node_ != nullptr) mgr_->Unref(node_);
      mgr_ = nullptr;
      node_ = nullptr;
    }

    explicit operator bool() const { return node_ != nullptr; }
    Versioned* get() const { return node_ != nullptr ? node_->state.get() : nullptr; }
    /// The pinned version's epoch number (diagnostics / test invariants).
    uint64_t epoch() const { return node_ != nullptr ? node_->epoch : 0; }

   private:
    friend class EpochManager;
    Pin(std::shared_ptr<EpochManager> mgr, Node* node)
        : mgr_(std::move(mgr)), node_(node) {}
    std::shared_ptr<EpochManager> mgr_;
    Node* node_ = nullptr;
  };

  /// Pin the currently published version. Never blocks on writers beyond
  /// the manager mutex (a few dozen instructions). The manager must be
  /// shared_ptr-owned (see contract notes).
  Pin PinCurrent() {
    MutexLock lock(mu_);
    assert(current_ != nullptr && "EpochManager: nothing published yet");
    current_->pins++;
    return Pin(shared_from_this(), current_);
  }

  /// Publish `state` as the new current version. `tag` is the caller's
  /// op sequence number as of this state. Writer-side; externally
  /// serialized. The superseded version becomes the (sole) recycle
  /// candidate once its pins drain; the previous candidate, if any, is
  /// released for deletion.
  void Publish(std::unique_ptr<Versioned> state, uint64_t tag) {
    Node* dead = nullptr;
    {
      MutexLock lock(mu_);
      Node* node = new Node;
      node->state = std::move(state);
      node->epoch = ++epoch_;
      node->tag = tag;
      node->next = nullptr;
      node->prev = tail_;
      if (tail_ != nullptr) tail_->next = node;
      tail_ = node;
      if (head_ == nullptr) head_ = node;
      Node* old = current_;
      current_ = node;
      if (old != nullptr) {
        // The just-superseded version supplants any older candidate.
        if (recycle_candidate_ != nullptr && recycle_candidate_ != old) {
          Node* prev = recycle_candidate_;
          prev->recyclable = false;
          if (prev->pins == 0) dead = Detach(prev);
        }
        old->recyclable = true;
        recycle_candidate_ = old;
      }
    }
    delete dead;
  }

  /// Writer-side: if the most recently retired version has drained (no
  /// pins), detach and return it for reuse as commit scratch, storing its
  /// tag in *tag. Returns nullptr when no drained candidate exists (a
  /// long reader still pins it, or it was already taken/evicted).
  std::unique_ptr<Versioned> TakeRecyclable(uint64_t* tag) {
    Node* taken = nullptr;
    {
      MutexLock lock(mu_);
      Node* cand = recycle_candidate_;
      if (cand == nullptr || cand->pins != 0) return nullptr;
      recycle_candidate_ = nullptr;
      taken = Detach(cand);
    }
    *tag = taken->tag;
    std::unique_ptr<Versioned> state = std::move(taken->state);
    delete taken;
    return state;
  }

  /// Drop the recycle candidate (e.g. the op log it would need was
  /// pruned, or direct substrate mutation made replay unsound). It is
  /// deleted now if drained, or when its last pin drops.
  void DropRecyclable() {
    Node* dead = nullptr;
    {
      MutexLock lock(mu_);
      Node* cand = recycle_candidate_;
      recycle_candidate_ = nullptr;
      if (cand != nullptr) {
        cand->recyclable = false;
        if (cand->pins == 0) dead = Detach(cand);
      }
    }
    delete dead;
  }

  /// The current version without pinning — writer-side only (the commit
  /// mutex holder is the only thread for which this cannot be superseded
  /// concurrently), or single-threaded use.
  Versioned* Current() {
    MutexLock lock(mu_);
    return current_ != nullptr ? current_->state.get() : nullptr;
  }

  bool has_current() {
    MutexLock lock(mu_);
    return current_ != nullptr;
  }

  /// Number of versions alive (current + pinned stragglers + parked
  /// standby). Test/diagnostic surface for the reclamation invariants.
  size_t live_versions() {
    MutexLock lock(mu_);
    size_t n = 0;
    for (Node* node = head_; node != nullptr; node = node->next) n++;
    return n;
  }

  uint64_t current_epoch() {
    MutexLock lock(mu_);
    return epoch_;
  }

 private:
  // Every mutable Node field (pins, recyclable, prev/next links) is
  // guarded by the owning manager's mu_; that relation is not expressible
  // as a GUARDED_BY on the inner struct (a Node cannot name its manager),
  // so it is enforced one level up: every function that touches a Node
  // either holds mu_ inline or carries REQUIRES(mu_). `state` and `epoch`
  // are written once before the node is published and immutable after —
  // Pin::get()/epoch() read them lock-free by design.
  struct Node {
    std::unique_ptr<Versioned> state;
    uint64_t epoch = 0;
    uint64_t tag = 0;
    size_t pins = 0;
    bool recyclable = false;
    Node* prev = nullptr;
    Node* next = nullptr;
  };

  void Ref(Node* node) {
    MutexLock lock(mu_);
    node->pins++;
  }

  void Unref(Node* node) {
    Node* dead = nullptr;
    {
      MutexLock lock(mu_);
      assert(node->pins > 0);
      node->pins--;
      // Reclaim on drain: superseded, not parked for recycling, no pins.
      if (node->pins == 0 && node != current_ && !node->recyclable) {
        dead = Detach(node);
      }
    }
    delete dead;
  }

  /// Unlink from the version list. Caller holds mu_ and deletes outside it
  /// (version destructors can be heavy — whole engine states).
  Node* Detach(Node* node) REQUIRES(mu_) {
    if (node->prev != nullptr) node->prev->next = node->next;
    if (node->next != nullptr) node->next->prev = node->prev;
    if (head_ == node) head_ = node->next;
    if (tail_ == node) tail_ = node->prev;
    node->prev = nullptr;
    node->next = nullptr;
    return node;
  }

  Mutex mu_;
  Node* head_ GUARDED_BY(mu_) = nullptr;  // oldest
  Node* tail_ GUARDED_BY(mu_) = nullptr;  // newest
  Node* current_ GUARDED_BY(mu_) = nullptr;
  Node* recycle_candidate_ GUARDED_BY(mu_) = nullptr;
  uint64_t epoch_ GUARDED_BY(mu_) = 0;
};

using EpochPin = EpochManager::Pin;

}  // namespace util
}  // namespace graphitti

#endif  // GRAPHITTI_UTIL_EPOCH_H_
