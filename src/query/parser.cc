#include "query/parser.h"

#include "query/lexer.h"
#include "util/string_util.h"

namespace graphitti {
namespace query {

namespace {

using util::Result;
using util::Status;

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<Query> Parse() {
    Query q;
    GRAPHITTI_RETURN_NOT_OK(Expect("FIND"));

    const Token& target = Peek();
    if (target.IsKeyword("CONTENTS")) {
      q.target = Target::kContents;
    } else if (target.IsKeyword("REFERENTS")) {
      q.target = Target::kReferents;
    } else if (target.IsKeyword("GRAPH")) {
      q.target = Target::kGraph;
    } else if (target.IsKeyword("FRAGMENTS")) {
      q.target = Target::kFragments;
    } else if (target.IsKeyword("COUNT")) {
      q.target = Target::kCount;
    } else {
      return Error("expected CONTENTS, REFERENTS, GRAPH, FRAGMENTS or COUNT after FIND");
    }
    Advance();

    if (Peek().type == TokenType::kVariable) {
      q.target_var = Peek().text;
      Advance();
    }
    if (Peek().IsKeyword("XPATH") || Peek().IsKeyword("RETURN")) {
      Advance();
      if (Peek().IsKeyword("XPATH")) Advance();  // RETURN XPATH "..."
      if (Peek().type != TokenType::kString) return Error("expected XPath string");
      q.return_xpath = Peek().text;
      Advance();
    }

    GRAPHITTI_RETURN_NOT_OK(Expect("WHERE"));
    GRAPHITTI_RETURN_NOT_OK(ExpectPunct("{"));
    while (!Peek().IsPunct("}")) {
      if (Peek().type == TokenType::kEnd) return Error("unterminated WHERE block");
      Clause clause;
      GRAPHITTI_RETURN_NOT_OK(ParseClause(&clause));
      q.clauses.push_back(std::move(clause));
      if (Peek().IsPunct(";")) Advance();
    }
    Advance();  // '}'

    if (Peek().IsKeyword("CONSTRAIN")) {
      Advance();
      while (true) {
        Constraint c;
        GRAPHITTI_RETURN_NOT_OK(ParseConstraint(&c));
        q.constraints.push_back(std::move(c));
        if (Peek().IsPunct(",")) {
          Advance();
          continue;
        }
        break;
      }
    }

    if (Peek().IsKeyword("LIMIT")) {
      Advance();
      if (Peek().type != TokenType::kNumber) return Error("expected number after LIMIT");
      q.limit = static_cast<size_t>(Peek().number);
      Advance();
      if (Peek().IsKeyword("PAGE")) {
        Advance();
        if (Peek().type != TokenType::kNumber) return Error("expected number after PAGE");
        q.page = static_cast<size_t>(Peek().number);
        if (q.page == 0) return Error("PAGE is 1-based");
        Advance();
      }
    }

    if (Peek().type != TokenType::kEnd) {
      return Error("unexpected trailing token '" + Peek().text + "'");
    }
    if (q.clauses.empty()) return Error("empty WHERE block");
    if (q.target == Target::kFragments && q.return_xpath.empty()) {
      return Error("FIND FRAGMENTS requires an XPATH return expression");
    }
    return q;
  }

 private:
  const Token& Peek(size_t ahead = 0) const {
    size_t idx = pos_ + ahead;
    return idx < tokens_.size() ? tokens_[idx] : tokens_.back();
  }
  void Advance() {
    if (pos_ + 1 < tokens_.size()) ++pos_;
  }
  Status Error(const std::string& msg) const {
    return Status::ParseError("query parser: " + msg + " (at offset " +
                              std::to_string(Peek().offset) + ")");
  }
  Status Expect(std::string_view kw) {
    if (!Peek().IsKeyword(kw)) return Error("expected '" + std::string(kw) + "'");
    Advance();
    return Status::OK();
  }
  Status ExpectPunct(std::string_view p) {
    if (!Peek().IsPunct(p)) return Error("expected '" + std::string(p) + "'");
    Advance();
    return Status::OK();
  }

  Result<double> ParseNumber() {
    if (Peek().type != TokenType::kNumber) return Error("expected number");
    double v = Peek().number;
    Advance();
    return v;
  }

  Status ParseClause(Clause* clause) {
    if (Peek().type != TokenType::kVariable) {
      return Error("clause must start with a ?variable");
    }
    clause->var = Peek().text;
    Advance();

    const Token& op = Peek();
    if (op.IsKeyword("IS")) {
      Advance();
      clause->kind = Clause::Kind::kIs;
      const Token& kind = Peek();
      if (kind.IsKeyword("CONTENT")) {
        clause->is_kind = VarKind::kContent;
      } else if (kind.IsKeyword("REFERENT")) {
        clause->is_kind = VarKind::kReferent;
      } else if (kind.IsKeyword("TERM")) {
        clause->is_kind = VarKind::kTerm;
      } else if (kind.IsKeyword("OBJECT")) {
        clause->is_kind = VarKind::kObject;
      } else {
        return Error("expected CONTENT, REFERENT, TERM or OBJECT after IS");
      }
      Advance();
      return Status::OK();
    }
    if (op.IsKeyword("CONTAINS")) {
      Advance();
      if (Peek().type != TokenType::kString) return Error("expected string after CONTAINS");
      clause->kind = Clause::Kind::kContains;
      clause->text = Peek().text;
      Advance();
      return Status::OK();
    }
    if (op.IsKeyword("XPATH")) {
      Advance();
      if (Peek().type != TokenType::kString) return Error("expected string after XPATH");
      clause->kind = Clause::Kind::kXPath;
      clause->text = Peek().text;
      Advance();
      return Status::OK();
    }
    if (op.IsKeyword("TYPE")) {
      Advance();
      if (Peek().type != TokenType::kIdent && Peek().type != TokenType::kString) {
        return Error("expected type name after TYPE");
      }
      clause->kind = Clause::Kind::kType;
      clause->text = util::ToLower(Peek().text);
      Advance();
      return Status::OK();
    }
    if (op.IsKeyword("DOMAIN")) {
      Advance();
      if (Peek().type != TokenType::kString && Peek().type != TokenType::kIdent) {
        return Error("expected domain after DOMAIN");
      }
      clause->kind = Clause::Kind::kDomain;
      clause->text = Peek().text;
      Advance();
      return Status::OK();
    }
    if (op.IsKeyword("CREATOR")) {
      Advance();
      if (Peek().type != TokenType::kString && Peek().type != TokenType::kIdent) {
        return Error("expected creator name after CREATOR");
      }
      clause->kind = Clause::Kind::kCreator;
      clause->text = Peek().text;
      Advance();
      return Status::OK();
    }
    if (op.IsKeyword("OVERLAPS") || op.IsKeyword("CONTAINEDIN")) {
      Advance();
      clause->kind = op.IsKeyword("OVERLAPS") ? Clause::Kind::kOverlaps
                                              : Clause::Kind::kContainedIn;
      if (Peek().IsKeyword("RECT")) {
        Advance();
        GRAPHITTI_RETURN_NOT_OK(ExpectPunct("["));
        std::vector<double> nums;
        while (!Peek().IsPunct("]")) {
          GRAPHITTI_ASSIGN_OR_RETURN(double v, ParseNumber());
          nums.push_back(v);
          if (Peek().IsPunct(",")) Advance();
        }
        Advance();  // ']'
        if (nums.size() == 4) {
          clause->rect = spatial::Rect::Make2D(nums[0], nums[1], nums[2], nums[3]);
        } else if (nums.size() == 6) {
          clause->rect =
              spatial::Rect::Make3D(nums[0], nums[1], nums[2], nums[3], nums[4], nums[5]);
        } else {
          return Error("RECT window needs 4 (2D) or 6 (3D) numbers");
        }
        clause->rect_window = true;
        return Status::OK();
      }
      GRAPHITTI_RETURN_NOT_OK(ExpectPunct("["));
      GRAPHITTI_ASSIGN_OR_RETURN(double lo, ParseNumber());
      GRAPHITTI_RETURN_NOT_OK(ExpectPunct(","));
      GRAPHITTI_ASSIGN_OR_RETURN(double hi, ParseNumber());
      GRAPHITTI_RETURN_NOT_OK(ExpectPunct("]"));
      clause->interval = spatial::Interval(static_cast<int64_t>(lo), static_cast<int64_t>(hi));
      return Status::OK();
    }
    if (op.IsKeyword("TERM")) {
      Advance();
      bool below = false;
      if (Peek().IsKeyword("BELOW")) {
        below = true;
        Advance();
      }
      if (Peek().type != TokenType::kString && Peek().type != TokenType::kIdent) {
        return Error("expected term name after TERM");
      }
      clause->kind = below ? Clause::Kind::kTermBelow : Clause::Kind::kTerm;
      clause->text = Peek().text;
      Advance();
      return Status::OK();
    }
    if (op.IsKeyword("TABLE")) {
      Advance();
      if (Peek().type != TokenType::kString && Peek().type != TokenType::kIdent) {
        return Error("expected table name after TABLE");
      }
      clause->kind = Clause::Kind::kTable;
      clause->text = Peek().text;
      Advance();
      if (Peek().IsKeyword("FILTER")) {
        Advance();
        GRAPHITTI_ASSIGN_OR_RETURN(clause->table_filter, ParseFilter());
      }
      return Status::OK();
    }
    if (op.IsKeyword("ANNOTATES") || op.IsKeyword("REFERS") || op.IsKeyword("OF") ||
        op.IsKeyword("CONNECTED")) {
      Clause::Kind kind = Clause::Kind::kAnnotates;
      if (op.IsKeyword("REFERS")) kind = Clause::Kind::kRefersTo;
      if (op.IsKeyword("OF")) kind = Clause::Kind::kOfObject;
      if (op.IsKeyword("CONNECTED")) kind = Clause::Kind::kConnected;
      Advance();
      if (Peek().type != TokenType::kVariable) {
        return Error("expected ?variable on the right of the edge clause");
      }
      clause->kind = kind;
      clause->var2 = Peek().text;
      Advance();
      return Status::OK();
    }
    return Error("unknown clause operator '" + op.text + "'");
  }

  Result<relational::Predicate> ParseFilter() {
    GRAPHITTI_ASSIGN_OR_RETURN(relational::Predicate pred, ParseComparison());
    while (Peek().IsKeyword("AND")) {
      Advance();
      GRAPHITTI_ASSIGN_OR_RETURN(relational::Predicate rhs, ParseComparison());
      pred = relational::Predicate::And(std::move(pred), std::move(rhs));
    }
    return pred;
  }

  Result<relational::Predicate> ParseComparison() {
    if (Peek().type != TokenType::kIdent) return Error("expected column name in FILTER");
    std::string column = Peek().text;
    Advance();

    relational::CompareOp cmp;
    const Token& op = Peek();
    if (op.IsPunct("=")) {
      cmp = relational::CompareOp::kEq;
    } else if (op.IsPunct("!=")) {
      cmp = relational::CompareOp::kNe;
    } else if (op.IsPunct("<")) {
      cmp = relational::CompareOp::kLt;
    } else if (op.IsPunct("<=")) {
      cmp = relational::CompareOp::kLe;
    } else if (op.IsPunct(">")) {
      cmp = relational::CompareOp::kGt;
    } else if (op.IsPunct(">=")) {
      cmp = relational::CompareOp::kGe;
    } else if (op.IsKeyword("CONTAINS")) {
      cmp = relational::CompareOp::kContains;
    } else {
      return Error("expected comparison operator in FILTER");
    }
    Advance();

    const Token& lit = Peek();
    relational::Value value;
    if (lit.type == TokenType::kString) {
      value = relational::Value::Str(lit.text);
    } else if (lit.type == TokenType::kNumber) {
      if (lit.text.find('.') == std::string::npos) {
        value = relational::Value::Int(static_cast<int64_t>(lit.number));
      } else {
        value = relational::Value::Real(lit.number);
      }
    } else if (lit.type == TokenType::kIdent) {
      value = relational::Value::Str(lit.text);
    } else {
      return Error("expected literal in FILTER comparison");
    }
    Advance();
    return relational::Predicate::Compare(std::move(column), cmp, std::move(value));
  }

  Status ParseConstraint(Constraint* constraint) {
    if (Peek().type != TokenType::kIdent) return Error("expected constraint name");
    std::string name = util::ToLower(Peek().text);
    if (name == "consecutive") {
      constraint->kind = Constraint::Kind::kConsecutive;
    } else if (name == "disjoint") {
      constraint->kind = Constraint::Kind::kDisjoint;
    } else if (name == "overlapping") {
      constraint->kind = Constraint::Kind::kOverlapping;
    } else if (name == "samedomain") {
      constraint->kind = Constraint::Kind::kSameDomain;
    } else {
      return Error("unknown constraint '" + name + "'");
    }
    Advance();
    GRAPHITTI_RETURN_NOT_OK(ExpectPunct("("));
    while (true) {
      if (Peek().type != TokenType::kVariable) return Error("expected ?variable in constraint");
      constraint->vars.push_back(Peek().text);
      Advance();
      if (Peek().IsPunct(",")) {
        Advance();
        continue;
      }
      break;
    }
    GRAPHITTI_RETURN_NOT_OK(ExpectPunct(")"));
    if (constraint->vars.size() < 2) {
      return Error("constraints need at least two variables");
    }
    return Status::OK();
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

util::Result<Query> ParseQuery(std::string_view input) {
  GRAPHITTI_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(input));
  return Parser(std::move(tokens)).Parse();
}

}  // namespace query
}  // namespace graphitti
