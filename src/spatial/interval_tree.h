// Augmented AVL interval tree: O(log n + k) stabbing and window queries.
//
// The paper stores "the annotated substructures of the primary data ... in a
// collection of interval trees for 1D data (e.g. sequences)" with "a single
// interval tree ... per chromosome instead of per annotated DNA sequence".
#ifndef GRAPHITTI_SPATIAL_INTERVAL_TREE_H_
#define GRAPHITTI_SPATIAL_INTERVAL_TREE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "spatial/interval.h"
#include "util/result.h"
#include "util/status.h"

namespace graphitti {
namespace spatial {

/// One stored interval with its payload (a referent id).
struct IntervalEntry {
  Interval interval;
  uint64_t id = 0;

  bool operator==(const IntervalEntry& other) const {
    return interval == other.interval && id == other.id;
  }
};

/// Self-balancing (AVL) interval tree keyed by (lo, hi, id) with subtree
/// max-hi augmentation. Duplicate (interval, id) pairs are rejected;
/// identical intervals with distinct ids are fine.
class IntervalTree {
 public:
  IntervalTree() = default;
  ~IntervalTree();
  IntervalTree(const IntervalTree&) = delete;
  IntervalTree& operator=(const IntervalTree&) = delete;
  IntervalTree(IntervalTree&& other) noexcept;
  IntervalTree& operator=(IntervalTree&& other) noexcept;

  /// Inserts; InvalidArgument when !interval.valid(), AlreadyExists on dup.
  util::Status Insert(const Interval& interval, uint64_t id);

  /// Builds a perfectly balanced tree from `entries` in O(n log n) — the
  /// fast path for reloading persisted corpora. Rejects invalid intervals
  /// and duplicate (interval, id) pairs.
  static util::Result<IntervalTree> BulkLoad(std::vector<IntervalEntry> entries);

  /// Removes an exact (interval, id) pair; NotFound if absent.
  util::Status Erase(const Interval& interval, uint64_t id);

  /// All entries whose interval contains `point`, ordered by (lo, hi, id).
  std::vector<IntervalEntry> Stab(int64_t point) const;

  /// All entries overlapping `window`, ordered by (lo, hi, id).
  std::vector<IntervalEntry> Window(const Interval& window) const;

  /// Visits every entry overlapping `window` in (lo, hi, id) order without
  /// materializing a result vector (the streaming form of Window()).
  void ForEachOverlap(const Interval& window,
                      const std::function<void(const IntervalEntry&)>& fn) const;

  /// The entry with the smallest (lo, hi, id) such that lo > `position`
  /// (the `next` substructure operator for ordered 1D domains, §II).
  std::optional<IntervalEntry> NextAfter(int64_t position) const;

  /// First entry in (lo, hi, id) order, if any.
  std::optional<IntervalEntry> First() const;

  /// Visits all entries in (lo, hi, id) order.
  void ForEach(const std::function<void(const IntervalEntry&)>& fn) const;

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  int height() const;

  /// Validates AVL balance, key order and max-hi augmentation (test hook).
  bool CheckInvariants() const;

  /// Deep structural copy for copy-on-write version publication.
  IntervalTree Clone() const;

 private:
  struct Node;

  static int Height(const Node* n);
  static int64_t MaxHi(const Node* n);
  static void Pull(Node* n);
  static Node* RotateLeft(Node* n);
  static Node* RotateRight(Node* n);
  static Node* Rebalance(Node* n);
  static int CompareKey(const Interval& a, uint64_t aid, const Node* n);

  Node* EraseRec(Node* node, const Interval& interval, uint64_t id, bool* erased);
  static Node* PopMin(Node* node, Node** min_out);
  static void Destroy(Node* node);

  Node* root_ = nullptr;
  size_t size_ = 0;
};

}  // namespace spatial
}  // namespace graphitti

#endif  // GRAPHITTI_SPATIAL_INTERVAL_TREE_H_
