// Coverage for the zero-allocation traversal core: the epoch-stamped
// scratch must behave identically across repeated and interleaved calls
// (stale stamps never leak between generations or graphs), the
// bidirectional FindPath must agree with a reference one-sided BFS under
// every option combination, and the galloping posting-list intersection
// must handle its edge cases.
#include <gtest/gtest.h>

#include <algorithm>
#include <optional>
#include <unordered_set>
#include <vector>

#include "agraph/agraph.h"
#include "util/dense_set.h"
#include "util/random.h"

namespace graphitti {
namespace agraph {
namespace {

// Reference shortest-hop distance via a plain one-sided BFS over the public
// edge API (independent of the scratch-based core under test).
std::optional<size_t> ReferenceDistance(const AGraph& g, NodeRef from, NodeRef to,
                                        const PathOptions& opt) {
  if (!g.HasNode(from) || !g.HasNode(to)) return std::nullopt;
  if (from == to) return 0;
  auto label_ok = [&](const std::string& l) {
    return opt.allowed_labels.empty() ||
           std::find(opt.allowed_labels.begin(), opt.allowed_labels.end(), l) !=
               opt.allowed_labels.end();
  };
  std::unordered_set<NodeRef, NodeRefHash> visited{from};
  std::vector<NodeRef> frontier{from};
  size_t dist = 0;
  while (!frontier.empty() && dist < opt.max_hops) {
    std::vector<NodeRef> next;
    for (NodeRef cur : frontier) {
      auto expand = [&](const EdgeRecord& e, NodeRef other) {
        if (!label_ok(e.label) || !visited.insert(other).second) return;
        next.push_back(other);
      };
      for (const EdgeRecord& e : g.OutEdges(cur)) expand(e, e.to);
      if (!opt.directed) {
        for (const EdgeRecord& e : g.InEdges(cur)) expand(e, e.from);
      }
    }
    ++dist;
    if (std::find(next.begin(), next.end(), to) != next.end()) return dist;
    frontier = std::move(next);
  }
  return std::nullopt;
}

// A returned path must be walkable edge by edge under the query's options.
void CheckPathIsValid(const AGraph& g, const Path& p, const PathOptions& opt) {
  ASSERT_EQ(p.edge_labels.size() + 1, p.nodes.size());
  for (size_t i = 0; i + 1 < p.nodes.size(); ++i) {
    const std::string& label = p.edge_labels[i];
    if (!opt.allowed_labels.empty()) {
      EXPECT_TRUE(std::find(opt.allowed_labels.begin(), opt.allowed_labels.end(),
                            label) != opt.allowed_labels.end());
    }
    bool forward = g.HasEdge(p.nodes[i], p.nodes[i + 1], label);
    bool backward = g.HasEdge(p.nodes[i + 1], p.nodes[i], label);
    if (opt.directed) {
      EXPECT_TRUE(forward) << "hop " << i << " violates direction";
    } else {
      EXPECT_TRUE(forward || backward) << "hop " << i << " is not an edge";
    }
  }
}

AGraph RandomGraph(uint64_t seed, uint64_t n, int chords) {
  util::Rng rng(seed);
  AGraph g;
  for (uint64_t i = 0; i < n; ++i) {
    EXPECT_TRUE(g.AddNode(NodeRef::Content(i)).ok());
  }
  const char* labels[] = {"a", "b", "c"};
  for (uint64_t i = 1; i < n; ++i) {
    EXPECT_TRUE(g.AddEdge(NodeRef::Content(rng.Next64() % i), NodeRef::Content(i),
                          labels[rng.Next64() % 3])
                    .ok());
  }
  for (int k = 0; k < chords; ++k) {
    uint64_t a = rng.Next64() % n;
    uint64_t b = rng.Next64() % n;
    if (a != b) {
      EXPECT_TRUE(
          g.AddEdge(NodeRef::Content(a), NodeRef::Content(b), labels[rng.Next64() % 3])
              .ok());
    }
  }
  return g;
}

TEST(TraversalCoreTest, FindPathMatchesReferenceBfs) {
  for (uint64_t seed : {1u, 7u, 23u}) {
    AGraph g = RandomGraph(seed, 60, 50);
    util::Rng rng(seed * 31);
    for (int trial = 0; trial < 60; ++trial) {
      NodeRef from = NodeRef::Content(rng.Next64() % 60);
      NodeRef to = NodeRef::Content(rng.Next64() % 60);
      PathOptions opt;
      opt.directed = (trial % 3 == 0);
      if (trial % 4 == 1) opt.allowed_labels = {"a", "b"};
      if (trial % 5 == 2) opt.max_hops = trial % 7;
      auto expected = ReferenceDistance(g, from, to, opt);
      auto got = g.FindPath(from, to, opt);
      if (expected.has_value()) {
        ASSERT_TRUE(got.ok()) << from.ToString() << "->" << to.ToString()
                              << " trial " << trial << ": " << got.status().ToString();
        EXPECT_EQ(got->hops(), *expected);
        CheckPathIsValid(g, *got, opt);
      } else {
        EXPECT_TRUE(got.status().IsNotFound()) << "trial " << trial;
      }
    }
  }
}

TEST(TraversalCoreTest, AppendReachableMatchesFindPathExistence) {
  // The reachability set from `from` within `max_hops` must contain exactly
  // the nodes FindPath reaches under the same options — the contract the
  // query executor's CONNECTED-join cache depends on.
  for (uint64_t seed : {3u, 17u}) {
    AGraph g = RandomGraph(seed, 50, 35);
    util::Rng rng(seed * 13);
    for (int trial = 0; trial < 12; ++trial) {
      NodeRef from = NodeRef::Content(rng.Next64() % 50);
      PathOptions opt;
      opt.directed = (trial % 3 == 0);
      if (trial % 4 == 1) opt.allowed_labels = {"a", "c"};
      opt.max_hops = trial % 6;
      std::vector<NodeRef> reach;
      g.AppendReachable(from, opt, &reach);
      std::unordered_set<NodeRef, NodeRefHash> reach_set(reach.begin(), reach.end());
      EXPECT_EQ(reach.size(), reach_set.size()) << "duplicates in reachable set";
      for (uint64_t i = 0; i < 50; ++i) {
        NodeRef to = NodeRef::Content(i);
        bool expected = ReferenceDistance(g, from, to, opt).has_value();
        EXPECT_EQ(reach_set.count(to) > 0, expected)
            << from.ToString() << "->" << to.ToString() << " trial " << trial;
      }
    }
  }
  // Unknown source: nothing is reachable.
  AGraph g = RandomGraph(5, 10, 5);
  std::vector<NodeRef> reach;
  g.AppendReachable(NodeRef::Content(999), PathOptions{}, &reach);
  EXPECT_TRUE(reach.empty());
}

TEST(TraversalCoreTest, RepeatedCallsReuseScratchIdentically) {
  AGraph g = RandomGraph(99, 40, 30);
  PathOptions opt;
  auto first = g.FindPath(NodeRef::Content(0), NodeRef::Content(39), opt);
  for (int i = 0; i < 20; ++i) {
    auto again = g.FindPath(NodeRef::Content(0), NodeRef::Content(39), opt);
    ASSERT_EQ(first.ok(), again.ok());
    if (first.ok()) {
      EXPECT_EQ(first->nodes, again->nodes);
      EXPECT_EQ(first->edge_labels, again->edge_labels);
    }
  }
}

TEST(TraversalCoreTest, InterleavedGraphsDoNotLeakScratchState) {
  // Two graphs of different sizes sharing the thread's scratch: stale
  // stamps from the larger graph must never satisfy queries on the smaller.
  AGraph big = RandomGraph(5, 80, 60);
  AGraph small;
  ASSERT_TRUE(small.AddNode(NodeRef::Content(0)).ok());
  ASSERT_TRUE(small.AddNode(NodeRef::Content(1)).ok());
  ASSERT_TRUE(small.AddNode(NodeRef::Content(2)).ok());  // isolated
  ASSERT_TRUE(small.AddEdge(NodeRef::Content(0), NodeRef::Content(1), "x").ok());
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(big.FindPath(NodeRef::Content(0), NodeRef::Content(79)).ok());
    auto p = small.FindPath(NodeRef::Content(0), NodeRef::Content(1));
    ASSERT_TRUE(p.ok());
    EXPECT_EQ(p->hops(), 1u);
    EXPECT_TRUE(small.FindPath(NodeRef::Content(0), NodeRef::Content(2))
                    .status()
                    .IsNotFound());
    EXPECT_TRUE(big.Connect({NodeRef::Content(1), NodeRef::Content(50)}).ok());
    EXPECT_TRUE(small.Connect({NodeRef::Content(0), NodeRef::Content(2)})
                    .status()
                    .IsNotFound());
  }
}

TEST(TraversalCoreTest, MaxHopsBoundaryExact) {
  // Chain of length 6: reachable iff max_hops >= 6, for both FindPath and
  // Connect.
  AGraph g;
  for (uint64_t i = 0; i <= 6; ++i) ASSERT_TRUE(g.AddNode(NodeRef::Content(i)).ok());
  for (uint64_t i = 0; i < 6; ++i) {
    ASSERT_TRUE(g.AddEdge(NodeRef::Content(i), NodeRef::Content(i + 1), "n").ok());
  }
  for (size_t hops = 0; hops <= 7; ++hops) {
    PathOptions popt;
    popt.max_hops = hops;
    auto p = g.FindPath(NodeRef::Content(0), NodeRef::Content(6), popt);
    ConnectOptions copt;
    copt.max_hops = hops;
    auto sg = g.Connect({NodeRef::Content(0), NodeRef::Content(6)}, copt);
    if (hops >= 6) {
      ASSERT_TRUE(p.ok()) << hops;
      EXPECT_EQ(p->hops(), 6u);
      EXPECT_TRUE(sg.ok()) << hops;
    } else {
      EXPECT_TRUE(p.status().IsNotFound()) << hops;
      EXPECT_TRUE(sg.status().IsNotFound()) << hops;
    }
  }
}

TEST(TraversalCoreTest, ConnectRepeatedCallsStable) {
  AGraph g = RandomGraph(17, 50, 40);
  std::vector<NodeRef> terminals{NodeRef::Content(3), NodeRef::Content(27),
                                 NodeRef::Content(44)};
  auto first = g.Connect(terminals);
  ASSERT_TRUE(first.ok());
  for (int i = 0; i < 10; ++i) {
    auto again = g.Connect(terminals);
    ASSERT_TRUE(again.ok());
    EXPECT_EQ(first->nodes, again->nodes);
    EXPECT_EQ(first->edges.size(), again->edges.size());
  }
}

TEST(TraversalCoreTest, AppendNeighborsMatchesNeighbors) {
  AGraph g = RandomGraph(41, 30, 40);
  std::vector<NodeRef> buf;
  for (uint64_t i = 0; i < 30; ++i) {
    for (bool directed : {false, true}) {
      for (const char* label : {"", "a"}) {
        buf.clear();
        g.AppendNeighbors(NodeRef::Content(i), directed, label, &buf);
        std::sort(buf.begin(), buf.end());
        EXPECT_EQ(buf, g.Neighbors(NodeRef::Content(i), directed, label));
      }
    }
  }
}

TEST(NodeRefHashTest, MixedKindsAndDenseIdsDoNotCollide) {
  // splitmix64 over the injective (id << 2) | kind encoding is a bijection:
  // dense ids across all four kinds must hash to distinct values (the seed
  // hash collided bucket-wise for exactly this pattern).
  NodeRefHash h;
  std::unordered_set<size_t> hashes;
  for (uint64_t id = 0; id < 10000; ++id) {
    hashes.insert(h(NodeRef::Content(id)));
    hashes.insert(h(NodeRef::Referent(id)));
    hashes.insert(h(NodeRef::Term(id)));
    hashes.insert(h(NodeRef::Object(id)));
  }
  EXPECT_EQ(hashes.size(), 40000u);
}

}  // namespace
}  // namespace agraph

namespace util {
namespace {

std::vector<uint64_t> Intersect(const std::vector<uint64_t>& a,
                                const std::vector<uint64_t>& b) {
  std::vector<uint64_t> out;
  IntersectSorted(a, b, &out);
  return out;
}

TEST(IntersectSortedTest, EdgeCases) {
  using V = std::vector<uint64_t>;
  EXPECT_EQ(Intersect({}, {}), V{});
  EXPECT_EQ(Intersect({}, {1, 2, 3}), V{});            // empty posting
  EXPECT_EQ(Intersect({2}, {1, 2, 3}), V{2});          // single element, hit
  EXPECT_EQ(Intersect({5}, {1, 2, 3}), V{});           // single element, miss
  EXPECT_EQ(Intersect({1, 3, 5}, {2, 4, 6}), V{});     // disjoint
  EXPECT_EQ(Intersect({1, 2, 3}, {1, 2, 3}), (V{1, 2, 3}));  // identical
  // Boundary hits at both ends of the larger list.
  EXPECT_EQ(Intersect({1, 100}, {1, 5, 50, 100}), (V{1, 100}));
}

TEST(IntersectSortedTest, MatchesSetIntersectionOnRandomInputs) {
  Rng rng(77);
  for (int trial = 0; trial < 50; ++trial) {
    // Skewed sizes exercise the galloping branch; similar sizes the merge.
    size_t na = 1 + rng.Next64() % 40;
    size_t nb = 1 + rng.Next64() % (trial % 2 == 0 ? 2000 : 60);
    std::vector<uint64_t> a, b;
    for (size_t i = 0; i < na; ++i) a.push_back(rng.Next64() % 500);
    for (size_t i = 0; i < nb; ++i) b.push_back(rng.Next64() % 500);
    std::sort(a.begin(), a.end());
    a.erase(std::unique(a.begin(), a.end()), a.end());
    std::sort(b.begin(), b.end());
    b.erase(std::unique(b.begin(), b.end()), b.end());
    std::vector<uint64_t> expected;
    std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                          std::back_inserter(expected));
    EXPECT_EQ(Intersect(a, b), expected) << "trial " << trial;
    EXPECT_EQ(Intersect(b, a), expected) << "trial " << trial << " (swapped)";
  }
}

TEST(EpochVisitSetTest, GenerationsIsolateAndEraseWorks) {
  EpochVisitSet s;
  s.Begin(8);
  EXPECT_TRUE(s.Insert(3));
  EXPECT_FALSE(s.Insert(3));
  EXPECT_TRUE(s.Contains(3));
  s.Erase(3);
  EXPECT_FALSE(s.Contains(3));
  EXPECT_TRUE(s.Insert(3));
  s.Begin(8);  // new generation: previous members gone, no clearing
  EXPECT_FALSE(s.Contains(3));
  EXPECT_TRUE(s.Insert(3));
  s.Begin(16);  // growth keeps earlier stamps invalid
  for (uint32_t i = 0; i < 16; ++i) EXPECT_FALSE(s.Contains(i));
}

}  // namespace
}  // namespace util
}  // namespace graphitti
