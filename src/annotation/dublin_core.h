// Dublin Core metadata elements carried by every annotation content
// ("an XML document whose elements consist of Dublin core attributes and
// other user-defined tags", §II).
#ifndef GRAPHITTI_ANNOTATION_DUBLIN_CORE_H_
#define GRAPHITTI_ANNOTATION_DUBLIN_CORE_H_

#include <string>
#include <vector>

#include "xml/xml_node.h"

namespace graphitti {
namespace annotation {

/// The Dublin Core element set (the subset Graphitti populates; all 15 are
/// representable as user tags too). Serialized as <dc:NAME> children.
struct DublinCore {
  std::string title;
  std::string creator;
  std::string subject;
  std::string description;
  std::string date;
  std::string type;
  std::string format;
  std::string identifier;
  std::string source;
  std::string language;
  std::string relation;
  std::string coverage;
  std::string rights;

  /// Appends one <dc:x> child per non-empty field.
  void AppendTo(xml::XmlNode* parent) const;

  /// Reads <dc:x> children of `element` (absent children leave fields empty).
  static DublinCore FromXml(const xml::XmlNode* element);

  /// (field-name, value) pairs for the non-empty fields.
  std::vector<std::pair<std::string, std::string>> NonEmptyFields() const;

  /// Appends the non-empty field values in canonical field order,
  /// space-separating them from any existing buffer content — the Dublin
  /// Core slice of an annotation's search text, without building a DOM
  /// walk or a pair vector.
  void AppendValuesSeparated(std::string* out) const;

  bool operator==(const DublinCore& other) const;
};

}  // namespace annotation
}  // namespace graphitti

#endif  // GRAPHITTI_ANNOTATION_DUBLIN_CORE_H_
