// Columnar binding table: the executor's intermediate join state.
//
// The §II pipeline collates typed subqueries by extending one variable at a
// time. A row-of-vectors representation copies every prior binding each time
// a row is extended — O(depth) per emitted row and an allocation per row.
// This table stores one dense column per bound variable instead
// (struct-of-arrays): extending variable k appends (value, parent) pairs to
// column k only, where `parent` indexes the row of column k-1 the extension
// grew from. Prior bindings are shared structurally through the parent
// links (a trie over binding prefixes), so
//   - extension is O(1) per emitted row with zero copying of prior columns,
//   - peak memory is sum(level sizes) * 12 bytes instead of
//     sum(level sizes * level depth) * 16 bytes, and
//   - a full row is recovered on demand by one O(depth) parent-chain walk.
#ifndef GRAPHITTI_QUERY_BINDING_TABLE_H_
#define GRAPHITTI_QUERY_BINDING_TABLE_H_

#include <cstdint>
#include <vector>

#include "agraph/agraph.h"

namespace graphitti {
namespace query {

class BindingTable {
 public:
  /// Bound columns so far (including the one opened by BeginColumn).
  size_t num_columns() const { return cols_.size(); }

  /// Rows available for extension: the rows of the last column, or the
  /// single empty seed row before any column exists.
  size_t NumRows() const { return cols_.empty() ? 1 : cols_.back().values.size(); }

  /// Opens a new column and returns the number of parent rows to extend.
  size_t BeginColumn() {
    size_t parents = NumRows();
    cols_.emplace_back();
    return parents;
  }

  /// Appends one row to the open column: variable binding `value` extending
  /// parent row `parent` of the previous column. `parent` must fit uint32_t
  /// (callers cap levels well below that via max_intermediate_rows).
  void Append(agraph::NodeRef value, size_t parent) {
    cols_.back().values.push_back(value);
    cols_.back().parents.push_back(static_cast<uint32_t>(parent));
  }

  /// Rows appended to the open column so far.
  size_t OpenRows() const { return cols_.back().values.size(); }

  /// Closes the open column, folding its size into peak_rows() and the
  /// table's byte footprint into peak_bytes().
  void EndColumn() {
    if (cols_.back().values.size() > peak_rows_) peak_rows_ = cols_.back().values.size();
    size_t bytes = ByteSize();
    if (bytes > peak_bytes_) peak_bytes_ = bytes;
  }

  /// Reads the bindings of parent row `row` — a row of the column preceding
  /// the open one — into *out (out[c] = binding of column c). With only the
  /// open column present this is the empty seed row.
  void ReadParentRow(size_t row, std::vector<agraph::NodeRef>* out) const {
    ReadRowAt(cols_.size() - 1, row, out);
  }

  /// Reads the bindings of row `row` of the last (closed) column into *out.
  void ReadRow(size_t row, std::vector<agraph::NodeRef>* out) const {
    ReadRowAt(cols_.size(), row, out);
  }

  /// Largest single-column row count seen (the table's peak width).
  size_t peak_rows() const { return peak_rows_; }

  /// Running maximum of ByteSize() across closed columns — the true peak,
  /// which keeps holding even if columns are later dropped or shrunk.
  size_t peak_bytes() const { return peak_bytes_; }

  /// Total bytes held by all columns (values + parent links).
  size_t ByteSize() const {
    size_t bytes = 0;
    for (const Column& c : cols_) {
      bytes += c.values.size() * sizeof(agraph::NodeRef) +
               c.parents.size() * sizeof(uint32_t);
    }
    return bytes;
  }

 private:
  struct Column {
    std::vector<agraph::NodeRef> values;
    std::vector<uint32_t> parents;  // row index into the previous column
  };

  // Fills out[0..levels) by walking parent links from row `row` of column
  // `levels - 1` back to column 0.
  void ReadRowAt(size_t levels, size_t row, std::vector<agraph::NodeRef>* out) const {
    out->resize(levels);
    size_t r = row;
    for (size_t c = levels; c-- > 0;) {
      (*out)[c] = cols_[c].values[r];
      r = cols_[c].parents[r];
    }
  }

  std::vector<Column> cols_;
  size_t peak_rows_ = 0;
  size_t peak_bytes_ = 0;
};

}  // namespace query
}  // namespace graphitti

#endif  // GRAPHITTI_QUERY_BINDING_TABLE_H_
