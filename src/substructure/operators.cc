#include "substructure/operators.h"

#include <algorithm>

namespace graphitti {
namespace substructure {

namespace {

util::Status CheckComparable(const Substructure& a, const Substructure& b) {
  if (a.type() != b.type()) {
    return util::Status::TypeError(
        "substructure types differ: " + std::string(SubTypeToString(a.type())) + " vs " +
        std::string(SubTypeToString(b.type())));
  }
  if (a.domain() != b.domain()) {
    return util::Status::InvalidArgument("substructure domains differ: '" + a.domain() +
                                         "' vs '" + b.domain() + "'");
  }
  if (!a.valid() || !b.valid()) {
    return util::Status::InvalidArgument("invalid substructure operand");
  }
  return util::Status::OK();
}

bool SortedSetsIntersect(const std::vector<uint64_t>& a, const std::vector<uint64_t>& b) {
  size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] == b[j]) return true;
    if (a[i] < b[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  return false;
}

std::vector<uint64_t> SortedSetIntersection(const std::vector<uint64_t>& a,
                                            const std::vector<uint64_t>& b) {
  std::vector<uint64_t> out;
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(), std::back_inserter(out));
  return out;
}

}  // namespace

util::Result<bool> IfOverlap(const Substructure& a, const Substructure& b) {
  GRAPHITTI_RETURN_NOT_OK(CheckComparable(a, b));
  switch (a.type()) {
    case SubType::kInterval:
      return a.interval().Overlaps(b.interval());
    case SubType::kRegion:
      return a.rect().Overlaps(b.rect());
    case SubType::kNodeSet:
    case SubType::kBlockSet:
    case SubType::kTreeClade:
      return SortedSetsIntersect(a.elements(), b.elements());
  }
  return util::Status::Internal("unreachable");
}

util::Result<Substructure> Intersect(const Substructure& a, const Substructure& b) {
  GRAPHITTI_RETURN_NOT_OK(CheckComparable(a, b));
  if (!a.traits().convex) {
    return util::Status::Unsupported("intersect is only defined for convex types (" +
                                     std::string(SubTypeToString(a.type())) +
                                     " is not convex); see MeetElements for set types");
  }
  switch (a.type()) {
    case SubType::kInterval: {
      auto hit = a.interval().Intersect(b.interval());
      if (!hit.has_value()) {
        return util::Status::NotFound("intervals are disjoint");
      }
      return Substructure::MakeInterval(a.domain(), *hit);
    }
    case SubType::kRegion: {
      auto hit = a.rect().Intersect(b.rect());
      if (!hit.has_value()) {
        return util::Status::NotFound("regions are disjoint");
      }
      return Substructure::MakeRegion(a.domain(), *hit);
    }
    default:
      return util::Status::Internal("unreachable: convex trait on set type");
  }
}

util::Result<Substructure> Next(const Substructure& a,
                                const spatial::IndexManager& index_manager) {
  if (!a.valid()) return util::Status::InvalidArgument("invalid substructure operand");
  if (!a.traits().ordered) {
    return util::Status::Unsupported("next is only defined on ordered domains (" +
                                     std::string(SubTypeToString(a.type())) + " is unordered)");
  }
  switch (a.type()) {
    case SubType::kInterval: {
      auto next = index_manager.NextInterval(a.domain(), a.interval().lo);
      if (!next.has_value()) {
        return util::Status::NotFound("no annotated substructure after " +
                                      a.interval().ToString() + " in '" + a.domain() + "'");
      }
      return Substructure::MakeInterval(a.domain(), next->interval);
    }
    case SubType::kBlockSet: {
      // Next block: the singleton of the smallest RowId greater than this
      // block's maximum. Block sets are not spatially indexed, so the
      // successor is relative to the block itself.
      uint64_t max_row = a.elements().back();
      return Substructure::MakeBlockSet(a.domain(), {max_row + 1});
    }
    default:
      return util::Status::Internal("unreachable: ordered trait on unordered type");
  }
}

util::Result<Substructure> MeetElements(const Substructure& a, const Substructure& b) {
  GRAPHITTI_RETURN_NOT_OK(CheckComparable(a, b));
  if (a.traits().convex) {
    return util::Status::Unsupported("MeetElements applies to set types; use Intersect");
  }
  std::vector<uint64_t> meet = SortedSetIntersection(a.elements(), b.elements());
  if (meet.empty()) {
    return util::Status::NotFound("element sets are disjoint");
  }
  switch (a.type()) {
    case SubType::kNodeSet:
      return Substructure::MakeNodeSet(a.domain(), std::move(meet));
    case SubType::kBlockSet:
      return Substructure::MakeBlockSet(a.domain(), std::move(meet));
    case SubType::kTreeClade:
      return Substructure::MakeTreeClade(a.domain(), std::move(meet));
    default:
      return util::Status::Internal("unreachable");
  }
}

}  // namespace substructure
}  // namespace graphitti
