// Deterministic RNG for workload generation (xoshiro-style splitmix64).
#ifndef GRAPHITTI_UTIL_RANDOM_H_
#define GRAPHITTI_UTIL_RANDOM_H_

#include <cstdint>
#include <string>
#include <vector>

namespace graphitti {
namespace util {

/// Deterministic, seedable PRNG used by all workload generators so that
/// tests and benchmarks are reproducible across platforms (unlike
/// std::mt19937 distributions, whose outputs are implementation-defined).
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL) : state_(seed) {
    // Warm up so that small seeds diverge quickly.
    Next64();
    Next64();
  }

  /// Next raw 64-bit value (splitmix64).
  uint64_t Next64() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t Uniform(int64_t lo, int64_t hi) {
    uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
    return lo + static_cast<int64_t>(Next64() % span);
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next64() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Bernoulli trial with probability p.
  bool NextBool(double p = 0.5) { return NextDouble() < p; }

  /// Zipfian-ish skewed pick in [0, n): rank r chosen with weight 1/(r+1).
  size_t Skewed(size_t n);

  /// Random element of a non-empty vector.
  template <typename T>
  const T& Pick(const std::vector<T>& v) {
    return v[static_cast<size_t>(Uniform(0, static_cast<int64_t>(v.size()) - 1))];
  }

  /// Random string over `alphabet` of length `len`.
  std::string RandomString(size_t len, std::string_view alphabet);

  /// Random DNA string (ACGT).
  std::string RandomDna(size_t len) { return RandomString(len, "ACGT"); }

 private:
  uint64_t state_;
};

}  // namespace util
}  // namespace graphitti

#endif  // GRAPHITTI_UTIL_RANDOM_H_
