#include <gtest/gtest.h>

#include "core/markers.h"

namespace graphitti {
namespace core {
namespace {

using relational::CompareOp;
using relational::Predicate;
using relational::Value;
using substructure::SubType;

TEST(LinearIntervalMarkerTest, ValidatesAgainstSequenceLength) {
  auto ok = LinearIntervalMarker("chr1", 10, 20, 100);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok->type(), SubType::kInterval);
  EXPECT_EQ(ok->interval(), spatial::Interval(10, 20));

  EXPECT_TRUE(LinearIntervalMarker("chr1", -1, 5, 100).status().IsInvalidArgument());
  EXPECT_TRUE(LinearIntervalMarker("chr1", 20, 10, 100).status().IsInvalidArgument());
  EXPECT_TRUE(LinearIntervalMarker("chr1", 90, 100, 100).status().IsOutOfRange());
  // Inclusive end: [99, 99] of a 100-base sequence is fine.
  EXPECT_TRUE(LinearIntervalMarker("chr1", 99, 99, 100).ok());
}

TEST(BlockSetMarkerTest, MarksMatchingRows) {
  relational::Table t("recs", relational::SchemaBuilder().Str("k").Int("v").Build());
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(t.Insert({Value::Str(i % 2 ? "odd" : "even"), Value::Int(i)}).ok());
  }
  auto block = BlockSetMarker(t, Predicate::Eq("k", Value::Str("odd")));
  ASSERT_TRUE(block.ok());
  EXPECT_EQ(block->type(), SubType::kBlockSet);
  EXPECT_EQ(block->domain(), "recs");
  EXPECT_EQ(block->elements(), (std::vector<uint64_t>{1, 3, 5, 7, 9}));

  EXPECT_TRUE(
      BlockSetMarker(t, Predicate::Eq("k", Value::Str("none"))).status().IsNotFound());
  EXPECT_TRUE(
      BlockSetMarker(t, Predicate::Eq("zzz", Value::Int(1))).status().IsNotFound());
}

class NeighborhoodTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Path A - B - C - D plus E attached to B.
    a_ = *graph_.AddNode("A");
    b_ = *graph_.AddNode("B");
    c_ = *graph_.AddNode("C");
    d_ = *graph_.AddNode("D");
    e_ = *graph_.AddNode("E");
    ASSERT_TRUE(graph_.AddEdge(a_, b_).ok());
    ASSERT_TRUE(graph_.AddEdge(b_, c_).ok());
    ASSERT_TRUE(graph_.AddEdge(c_, d_).ok());
    ASSERT_TRUE(graph_.AddEdge(b_, e_).ok());
  }
  InteractionGraph graph_{"ppi"};
  uint64_t a_, b_, c_, d_, e_;
};

TEST_F(NeighborhoodTest, RadiusZeroIsJustTheNode) {
  auto mark = GraphNeighborhoodMarker(graph_, "B", 0);
  ASSERT_TRUE(mark.ok());
  EXPECT_EQ(mark->elements(), (std::vector<uint64_t>{b_}));
  EXPECT_EQ(mark->domain(), "ppi");
}

TEST_F(NeighborhoodTest, RadiusGrowsBfs) {
  auto r1 = GraphNeighborhoodMarker(graph_, "B", 1);
  ASSERT_TRUE(r1.ok());
  EXPECT_EQ(r1->elements(), (std::vector<uint64_t>{a_, b_, c_, e_}));
  auto r2 = GraphNeighborhoodMarker(graph_, "B", 2);
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r2->elements().size(), 5u);
  // Custom domain override.
  auto named = GraphNeighborhoodMarker(graph_, "A", 1, "custom");
  ASSERT_TRUE(named.ok());
  EXPECT_EQ(named->domain(), "custom");
}

TEST_F(NeighborhoodTest, UnknownCenterFails) {
  EXPECT_TRUE(GraphNeighborhoodMarker(graph_, "ZZ", 1).status().IsNotFound());
}

TEST(CladeMarkerTest, MarksLeafSets) {
  auto tree = PhyloTree::FromNewick("((A,B)X,(C,D)Y)R;");
  ASSERT_TRUE(tree.ok());
  auto clade = CladeMarker(*tree, "X", "phylo:flu");
  ASSERT_TRUE(clade.ok());
  EXPECT_EQ(clade->type(), SubType::kTreeClade);
  EXPECT_EQ(clade->domain(), "phylo:flu");
  EXPECT_EQ(clade->elements().size(), 2u);
  // Root clade covers every leaf.
  auto root = CladeMarker(*tree, "R", "phylo:flu");
  ASSERT_TRUE(root.ok());
  EXPECT_EQ(root->elements().size(), 4u);
  EXPECT_TRUE(CladeMarker(*tree, "nope", "d").status().IsNotFound());
}

TEST(MsaColumnMarkerTest, ValidatesColumnRange) {
  Msa msa;
  msa.name = "aln";
  msa.rows = {{"s1", "ACGT-ACGT-"}, {"s2", "AC-TTAC-TT"}};
  auto mark = MsaColumnMarker(msa, 2, 6);
  ASSERT_TRUE(mark.ok());
  EXPECT_EQ(mark->domain(), "msa:aln:cols");
  EXPECT_EQ(mark->interval(), spatial::Interval(2, 6));

  EXPECT_TRUE(MsaColumnMarker(msa, 5, 10).status().IsOutOfRange());
  EXPECT_TRUE(MsaColumnMarker(msa, -1, 3).status().IsOutOfRange());
  EXPECT_TRUE(MsaColumnMarker(msa, 6, 2).status().IsOutOfRange());
  Msa bad;
  bad.name = "empty";
  EXPECT_TRUE(MsaColumnMarker(bad, 0, 0).status().IsInvalidArgument());
}

}  // namespace
}  // namespace core
}  // namespace graphitti
