#include "relational/catalog.h"

namespace graphitti {
namespace relational {

util::Result<Table*> Catalog::CreateTable(std::string name, Schema schema) {
  if (tables_.count(name) > 0) {
    return util::Status::AlreadyExists("table '" + name + "' already exists");
  }
  auto table = std::make_unique<Table>(name, std::move(schema));
  Table* ptr = table.get();
  tables_.emplace(std::move(name), std::move(table));
  return ptr;
}

Table* Catalog::GetTable(std::string_view name) {
  auto it = tables_.find(name);
  return it == tables_.end() ? nullptr : it->second.get();
}

const Table* Catalog::GetTable(std::string_view name) const {
  auto it = tables_.find(name);
  return it == tables_.end() ? nullptr : it->second.get();
}

util::Status Catalog::DropTable(std::string_view name) {
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    return util::Status::NotFound("table '" + std::string(name) + "' not found");
  }
  tables_.erase(it);
  return util::Status::OK();
}

std::vector<std::string> Catalog::TableNames() const {
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [name, _] : tables_) names.push_back(name);
  return names;
}

size_t Catalog::TotalRows() const {
  size_t total = 0;
  for (const auto& [_, table] : tables_) total += table->size();
  return total;
}

Catalog Catalog::Clone() const {
  Catalog copy;
  for (const auto& [name, table] : tables_) {
    copy.tables_.emplace(name, table->Clone());
  }
  return copy;
}

}  // namespace relational
}  // namespace graphitti
