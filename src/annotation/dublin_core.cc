#include "annotation/dublin_core.h"

#include <array>

namespace graphitti {
namespace annotation {

namespace {

struct FieldDesc {
  const char* name;
  std::string DublinCore::* member;
};

constexpr std::array kFields = {
    FieldDesc{"title", &DublinCore::title},
    FieldDesc{"creator", &DublinCore::creator},
    FieldDesc{"subject", &DublinCore::subject},
    FieldDesc{"description", &DublinCore::description},
    FieldDesc{"date", &DublinCore::date},
    FieldDesc{"type", &DublinCore::type},
    FieldDesc{"format", &DublinCore::format},
    FieldDesc{"identifier", &DublinCore::identifier},
    FieldDesc{"source", &DublinCore::source},
    FieldDesc{"language", &DublinCore::language},
    FieldDesc{"relation", &DublinCore::relation},
    FieldDesc{"coverage", &DublinCore::coverage},
    FieldDesc{"rights", &DublinCore::rights},
};

}  // namespace

void DublinCore::AppendTo(xml::XmlNode* parent) const {
  for (const FieldDesc& f : kFields) {
    const std::string& value = this->*(f.member);
    if (!value.empty()) {
      parent->AddElementWithText(std::string("dc:") + f.name, value);
    }
  }
}

DublinCore DublinCore::FromXml(const xml::XmlNode* element) {
  DublinCore dc;
  if (element == nullptr) return dc;
  for (const FieldDesc& f : kFields) {
    const xml::XmlNode* child = element->FirstChildElement(std::string("dc:") + f.name);
    if (child != nullptr) dc.*(f.member) = child->InnerText();
  }
  return dc;
}

std::vector<std::pair<std::string, std::string>> DublinCore::NonEmptyFields() const {
  std::vector<std::pair<std::string, std::string>> out;
  for (const FieldDesc& f : kFields) {
    const std::string& value = this->*(f.member);
    if (!value.empty()) out.emplace_back(f.name, value);
  }
  return out;
}

bool DublinCore::operator==(const DublinCore& other) const {
  for (const FieldDesc& f : kFields) {
    if (this->*(f.member) != other.*(f.member)) return false;
  }
  return true;
}

}  // namespace annotation
}  // namespace graphitti
