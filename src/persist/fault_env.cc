#include "persist/fault_env.h"

#include <algorithm>

namespace graphitti {
namespace persist {

using util::Result;
using util::Status;

// Not in an anonymous namespace: FaultInjectionEnv names it as a friend.
class FaultWritableFile : public WritableFile {
 public:
  FaultWritableFile(FaultInjectionEnv* env, std::string path)
      : env_(env), path_(std::move(path)) {}

  Status Append(std::string_view data) override {
    GRAPHITTI_RETURN_NOT_OK(env_->CheckWritable());
    auto it = env_->files_.find(path_);
    if (it == env_->files_.end()) {
      return Status::Internal("append to removed file '" + path_ + "'");
    }
    // Space budget caps the write first (ENOSPC, retryable, no poison);
    // the crash budget then decides how much of the space-granted prefix
    // lands (crossing it poisons the env until Crash()).
    uint64_t space_grant = env_->GrantSpace(data.size());
    uint64_t granted = env_->GrantWrite(space_grant);
    it->second.data.append(data.data(), static_cast<size_t>(granted));
    if (granted < space_grant) {
      return Status::Unavailable("injected short write on '" + path_ + "'");
    }
    if (space_grant < data.size()) {
      return Status::Unavailable("injected ENOSPC on '" + path_ +
                                 "': space budget exhausted");
    }
    return Status::OK();
  }

  Status Sync() override {
    GRAPHITTI_RETURN_NOT_OK(env_->CheckWritable());
    if (env_->fail_syncs_ > 0) {
      --env_->fail_syncs_;
      return Status::Unavailable("injected fsync failure on '" + path_ + "'");
    }
    auto it = env_->files_.find(path_);
    if (it == env_->files_.end()) {
      return Status::Internal("sync of removed file '" + path_ + "'");
    }
    it->second.synced = it->second.data.size();
    return Status::OK();
  }

  Status Close() override { return Status::OK(); }

 private:
  FaultInjectionEnv* env_;
  std::string path_;
};

Status FaultInjectionEnv::CheckWritable() const {
  if (poisoned_) {
    return Status::Unavailable("filesystem poisoned by injected crash (call Crash())");
  }
  return Status::OK();
}

uint64_t FaultInjectionEnv::GrantWrite(uint64_t want) {
  uint64_t left = crash_after_bytes_ - bytes_written_;
  uint64_t granted = std::min(want, left);
  bytes_written_ += granted;
  if (granted < want) poisoned_ = true;
  return granted;
}

uint64_t FaultInjectionEnv::GrantSpace(uint64_t want) {
  if (space_budget_ == UINT64_MAX) return want;
  uint64_t left = space_budget_ > space_used_ ? space_budget_ - space_used_ : 0;
  uint64_t granted = std::min(want, left);
  space_used_ += granted;
  return granted;
}

Result<std::unique_ptr<WritableFile>> FaultInjectionEnv::NewWritableFile(const std::string& path,
                                                                         bool truncate) {
  GRAPHITTI_RETURN_NOT_OK(CheckWritable());
  auto it = files_.find(path);
  PendingOp op;
  op.kind = OpKind::kCreate;
  op.path = path;
  if (it != files_.end()) {
    if (truncate) {
      // An existing file truncated to empty: crashing before SyncDir may
      // still restore the old inode in this model (conservative: the create
      // entry itself is what the directory fsync pins).
      op.had_prior = true;
      op.prior = it->second;
      it->second = FileState{};
      pending_[ParentDir(path)].push_back(std::move(op));
    }
    // Append mode on an existing file changes no namespace state.
  } else {
    files_[path] = FileState{};
    pending_[ParentDir(path)].push_back(std::move(op));
  }
  return std::unique_ptr<WritableFile>(std::make_unique<FaultWritableFile>(this, path));
}

Result<std::string> FaultInjectionEnv::ReadFileToString(const std::string& path) const {
  auto it = files_.find(path);
  if (it == files_.end()) return Status::NotFound("cannot open '" + path + "'");
  return it->second.data;
}

bool FaultInjectionEnv::FileExists(const std::string& path) const {
  return files_.count(path) > 0;
}

Result<std::vector<std::string>> FaultInjectionEnv::ListDir(const std::string& dir) const {
  std::string prefix = dir;
  if (!prefix.empty() && prefix.back() != '/') prefix += '/';
  std::vector<std::string> names;
  for (const auto& [path, state] : files_) {
    (void)state;
    if (path.size() > prefix.size() && path.compare(0, prefix.size(), prefix) == 0 &&
        path.find('/', prefix.size()) == std::string::npos) {
      names.push_back(path.substr(prefix.size()));
    }
  }
  // Directories are implicit in this model; an empty listing is still valid.
  return names;
}

Status FaultInjectionEnv::CreateDirs(const std::string& dir) {
  (void)dir;  // directories are implicit
  return Status::OK();
}

Status FaultInjectionEnv::RemoveFile(const std::string& path) {
  GRAPHITTI_RETURN_NOT_OK(CheckWritable());
  auto it = files_.find(path);
  if (it == files_.end()) return Status::NotFound("'" + path + "' not found");
  PendingOp op;
  op.kind = OpKind::kRemove;
  op.path = path;
  op.had_prior = true;
  op.prior = std::move(it->second);
  files_.erase(it);
  pending_[ParentDir(path)].push_back(std::move(op));
  return Status::OK();
}

Status FaultInjectionEnv::RenameFile(const std::string& from, const std::string& to) {
  GRAPHITTI_RETURN_NOT_OK(CheckWritable());
  auto src = files_.find(from);
  if (src == files_.end()) return Status::NotFound("'" + from + "' not found");
  PendingOp op;
  op.kind = OpKind::kRename;
  op.from = from;
  op.path = to;
  auto dst = files_.find(to);
  if (dst != files_.end()) {
    op.had_prior = true;
    op.prior = std::move(dst->second);
    files_.erase(dst);
  }
  files_[to] = std::move(src->second);
  files_.erase(from);
  pending_[ParentDir(to)].push_back(std::move(op));
  return Status::OK();
}

Status FaultInjectionEnv::TruncateFile(const std::string& path, uint64_t size) {
  GRAPHITTI_RETURN_NOT_OK(CheckWritable());
  auto it = files_.find(path);
  if (it == files_.end()) return Status::NotFound("'" + path + "' not found");
  FileState& f = it->second;
  if (size < f.data.size()) f.data.resize(static_cast<size_t>(size));
  f.synced = std::min<uint64_t>(f.synced, f.data.size());
  return Status::OK();
}

Status FaultInjectionEnv::SyncDir(const std::string& dir) {
  GRAPHITTI_RETURN_NOT_OK(CheckWritable());
  if (fail_syncs_ > 0) {
    --fail_syncs_;
    return Status::Unavailable("injected fsync failure on dir '" + dir + "'");
  }
  pending_.erase(dir);
  return Status::OK();
}

void FaultInjectionEnv::Crash() {
  // Undo un-pinned namespace ops, newest first, so interleaved operations on
  // the same names unwind correctly. Lists are per-directory in insertion
  // order; ops on the same path always live in the same directory list, so
  // per-list reverse order is sufficient.
  for (auto& [dir, list] : pending_) {
    (void)dir;
    for (auto it = list.rbegin(); it != list.rend(); ++it) {
      PendingOp& op = *it;
      switch (op.kind) {
        case OpKind::kCreate:
          if (op.had_prior) {
            files_[op.path] = std::move(op.prior);
          } else {
            files_.erase(op.path);
          }
          break;
        case OpKind::kRemove:
          files_[op.path] = std::move(op.prior);
          break;
        case OpKind::kRename: {
          auto cur = files_.find(op.path);
          if (cur != files_.end()) {
            files_[op.from] = std::move(cur->second);
            files_.erase(op.path);
          }
          if (op.had_prior) files_[op.path] = std::move(op.prior);
          break;
        }
      }
    }
  }
  pending_.clear();
  for (auto& [path, f] : files_) {
    (void)path;
    if (f.data.size() > f.synced) f.data.resize(static_cast<size_t>(f.synced));
  }
  poisoned_ = false;
  crash_after_bytes_ = UINT64_MAX;
  bytes_written_ = 0;
  space_budget_ = UINT64_MAX;
  space_used_ = 0;
  fail_syncs_ = 0;
}

}  // namespace persist
}  // namespace graphitti
