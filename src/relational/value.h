// Typed values for the relational substrate.
#ifndef GRAPHITTI_RELATIONAL_VALUE_H_
#define GRAPHITTI_RELATIONAL_VALUE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

namespace graphitti {
namespace relational {

enum class ValueType { kNull, kInt64, kDouble, kString, kBytes };

std::string_view ValueTypeToString(ValueType type);

/// A dynamically-typed cell value. Bytes carry raw object payloads (the
/// paper stores "the raw actual data ... in the same tables in their native
/// formats"); strings carry metadata.
class Value {
 public:
  Value() : repr_(std::monostate{}) {}

  static Value Null() { return Value(); }
  static Value Int(int64_t v) { return Value(Repr(v)); }
  static Value Real(double v) { return Value(Repr(v)); }
  static Value Str(std::string v) { return Value(Repr(std::move(v))); }
  static Value Blob(std::vector<uint8_t> v) { return Value(Repr(std::move(v))); }

  ValueType type() const {
    switch (repr_.index()) {
      case 0:
        return ValueType::kNull;
      case 1:
        return ValueType::kInt64;
      case 2:
        return ValueType::kDouble;
      case 3:
        return ValueType::kString;
      default:
        return ValueType::kBytes;
    }
  }

  bool is_null() const { return type() == ValueType::kNull; }

  /// Accessors; behaviour is undefined when the type does not match (callers
  /// validate via type() or the table schema).
  int64_t as_int() const { return std::get<int64_t>(repr_); }
  double as_double() const { return std::get<double>(repr_); }
  const std::string& as_string() const { return std::get<std::string>(repr_); }
  const std::vector<uint8_t>& as_bytes() const {
    return std::get<std::vector<uint8_t>>(repr_);
  }

  /// Numeric value as double (int64 widens); 0 for non-numerics.
  double AsNumber() const;

  /// Total order: null < int/double (numeric order, cross-comparable) <
  /// string (lexicographic) < bytes (lexicographic). Returns -1/0/+1.
  int Compare(const Value& other) const;

  bool operator==(const Value& other) const { return Compare(other) == 0; }
  bool operator!=(const Value& other) const { return Compare(other) != 0; }
  bool operator<(const Value& other) const { return Compare(other) < 0; }

  size_t Hash() const;

  /// Display form (blobs render as "blob(<n> bytes)").
  std::string ToString() const;

 private:
  using Repr = std::variant<std::monostate, int64_t, double, std::string,
                            std::vector<uint8_t>>;
  explicit Value(Repr repr) : repr_(std::move(repr)) {}
  Repr repr_;
};

struct ValueHash {
  size_t operator()(const Value& v) const { return v.Hash(); }
};

/// A tuple of cell values, positionally matching a table schema.
using Row = std::vector<Value>;

}  // namespace relational
}  // namespace graphitti

#endif  // GRAPHITTI_RELATIONAL_VALUE_H_
