// ThreadPool: a fixed pool of worker threads with a deadlock-free
// parallel-for, shared by the query executor and agraph::ConnectBatch.
//
// Design: ParallelFor(n, max_helpers, body) dispatches indices from a
// shared atomic counter. The *calling* thread always participates — it
// claims indices in the same loop the helpers do — and helpers are
// best-effort: idle pool workers join in, but if every worker is busy
// (or the pool has zero threads, e.g. a 1-core box) the caller simply
// drains all indices serially. There is therefore no scenario in which
// ParallelFor waits on a thread that is itself waiting on this
// ParallelFor: nested/recursive calls degrade to serial execution on the
// inner level instead of deadlocking.
//
// Lifetime: jobs are shared_ptr-owned, so a helper that raced past the
// caller's return only ever observes a drained counter — it never
// touches freed stack state, and `body` is only invoked for indices
// claimed before the counter ran dry (all of which complete before the
// caller's wait returns).
//
// The body must be safe to invoke concurrently for distinct indices;
// keep n coarse (a few chunks per worker), since each completion takes
// one short mutex hold. Exceptions from the body are not supported (the
// engine's hot paths report via Status instead).
//
// Shared() returns a process-wide lazily-created pool sized
// hardware_concurrency-1 (the caller is the extra worker), leaked at
// exit so static destructor order is a non-issue.
//
// Locking discipline (checked by Clang Thread Safety Analysis): the pool
// mutex mu_ guards the pending-job list and the shutdown flag; each
// job's done_mu guards its completion count. Condition waits are written
// as explicit while-loops so every guarded access sits in a scope the
// analysis can see.
#ifndef GRAPHITTI_UTIL_THREAD_POOL_H_
#define GRAPHITTI_UTIL_THREAD_POOL_H_

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "util/thread_annotations.h"

namespace graphitti {
namespace util {

class ThreadPool {
 public:
  explicit ThreadPool(size_t num_threads) {
    threads_.reserve(num_threads);
    for (size_t i = 0; i < num_threads; ++i) {
      threads_.emplace_back([this] { WorkerLoop(); });
    }
  }

  ~ThreadPool() {
    {
      MutexLock lock(mu_);
      shutdown_ = true;
    }
    wake_.NotifyAll();
    for (std::thread& t : threads_) t.join();
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_threads() const { return threads_.size(); }

  /// Run body(i) for every i in [0, n), distributing i across the caller
  /// plus up to `max_helpers` pool workers. Blocks until all n
  /// invocations complete. max_helpers == 0 runs serially on the caller.
  ///
  /// `stop` (optional) is a cooperative early-out: once it reads non-zero,
  /// remaining indices are still claimed and counted — the done == n
  /// completion invariant must hold for the caller's wait to return — but
  /// their bodies are skipped. Indices whose body already started always
  /// run to completion; the flag only suppresses work not yet begun.
  void ParallelFor(size_t n, size_t max_helpers,
                   const std::function<void(size_t)>& body,
                   const std::atomic<uint8_t>* stop = nullptr) {
    auto stopped = [stop] {
      return stop != nullptr && stop->load(std::memory_order_relaxed) != 0;
    };
    if (n == 0) return;
    if (n == 1 || max_helpers == 0 || threads_.empty()) {
      for (size_t i = 0; i < n && !stopped(); ++i) body(i);
      return;
    }
    std::shared_ptr<Job> job = std::make_shared<Job>();
    job->n = n;
    job->body = &body;
    job->max_helpers = max_helpers;
    job->stop = stop;
    {
      MutexLock lock(mu_);
      pending_.push_back(job);
    }
    wake_.NotifyAll();
    // Caller participates: claim indices until the counter runs dry.
    for (size_t i = job->next.fetch_add(1); i < n;
         i = job->next.fetch_add(1)) {
      if (!stopped()) body(i);
      MutexLock lock(job->done_mu);
      job->done++;
    }
    Deregister(job.get());
    // Wait for helpers still finishing indices they claimed. Helpers
    // notify under done_mu and touch nothing of ours afterwards (the job
    // itself is shared-owned), so returning here is race-free.
    MutexLock lock(job->done_mu);
    while (job->done < job->n) job->done_cv.Wait(job->done_mu);
  }

  /// The process-wide shared pool (hardware_concurrency - 1 workers;
  /// possibly zero threads on a 1-core box, where ParallelFor degrades to
  /// the caller running serially). Intentionally leaked.
  static ThreadPool* Shared() {
    static ThreadPool* pool = [] {
      unsigned hw = std::thread::hardware_concurrency();
      size_t workers = hw > 1 ? static_cast<size_t>(hw - 1) : 0;
      return new ThreadPool(workers);
    }();
    return pool;
  }

 private:
  struct Job {
    size_t n = 0;
    const std::function<void(size_t)>* body = nullptr;
    size_t max_helpers = 0;
    // Cooperative early-out flag shared with the submitter (may be null).
    const std::atomic<uint8_t>* stop = nullptr;
    // Helpers admitted so far. Guarded by the owning pool's mu_ — an
    // inner struct cannot name its pool in a GUARDED_BY, so the relation
    // is enforced by WorkerLoop touching it only inside its mu_ scope.
    size_t joined = 0;
    std::atomic<size_t> next{0};
    Mutex done_mu;
    CondVar done_cv;
    size_t done GUARDED_BY(done_mu) = 0;
  };

  void Deregister(const Job* job) {
    MutexLock lock(mu_);
    for (size_t i = 0; i < pending_.size(); ++i) {
      if (pending_[i].get() == job) {
        pending_.erase(pending_.begin() + static_cast<ptrdiff_t>(i));
        return;
      }
    }
  }

  void WorkerLoop() {
    for (;;) {
      std::shared_ptr<Job> job;
      {
        MutexLock lock(mu_);
        while (!shutdown_ && pending_.empty()) wake_.Wait(mu_);
        if (shutdown_) return;
        for (const std::shared_ptr<Job>& candidate : pending_) {
          if (candidate->joined < candidate->max_helpers &&
              candidate->next.load(std::memory_order_relaxed) <
                  candidate->n) {
            candidate->joined++;
            job = candidate;
            break;
          }
        }
        if (job == nullptr) {
          // Every pending job is full or drained; yield until the set
          // changes (drained jobs deregister as their callers finish).
          wake_.WaitFor(mu_, std::chrono::milliseconds(1));
          continue;
        }
      }
      size_t n = job->n;
      for (size_t i = job->next.fetch_add(1); i < n;
           i = job->next.fetch_add(1)) {
        if (job->stop == nullptr ||
            job->stop->load(std::memory_order_relaxed) == 0) {
          (*job->body)(i);
        }
        MutexLock lock(job->done_mu);
        job->done++;
        if (job->done >= n) job->done_cv.NotifyAll();
      }
      if (job->next.load(std::memory_order_relaxed) >= n) Deregister(job.get());
    }
  }

  Mutex mu_;
  CondVar wake_;
  std::vector<std::shared_ptr<Job>> pending_ GUARDED_BY(mu_);
  bool shutdown_ GUARDED_BY(mu_) = false;
  std::vector<std::thread> threads_;
};

}  // namespace util
}  // namespace graphitti

#endif  // GRAPHITTI_UTIL_THREAD_POOL_H_
