// Result<T>: a Status or a value (Arrow-style).
#ifndef GRAPHITTI_UTIL_RESULT_H_
#define GRAPHITTI_UTIL_RESULT_H_

#include <cassert>
#include <utility>
#include <variant>

#include "util/status.h"

namespace graphitti {
namespace util {

/// Holds either a value of type T or a non-OK Status explaining its absence.
///
/// Usage:
///   Result<int> ParsePort(std::string_view s);
///   GRAPHITTI_ASSIGN_OR_RETURN(int port, ParsePort(text));
template <typename T>
class Result {
 public:
  /// Constructs from a value (implicit, mirrors arrow::Result).
  Result(T value) : repr_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Constructs from a non-OK status. Constructing from an OK status is a
  /// programming error and is normalized to an Internal error.
  Result(Status status) : repr_(std::move(status)) {  // NOLINT(runtime/explicit)
    if (std::get<Status>(repr_).ok()) {
      repr_ = Status::Internal("Result constructed from OK status");
    }
  }

  bool ok() const { return std::holds_alternative<T>(repr_); }

  /// The error Status, or OK when a value is held.
  Status status() const {
    if (ok()) return Status::OK();
    return std::get<Status>(repr_);
  }

  /// Value accessors. Must only be called when ok().
  const T& ValueUnsafe() const& {
    assert(ok());
    return std::get<T>(repr_);
  }
  T& ValueUnsafe() & {
    assert(ok());
    return std::get<T>(repr_);
  }
  T&& ValueUnsafe() && {
    assert(ok());
    return std::get<T>(std::move(repr_));
  }

  const T& operator*() const& { return ValueUnsafe(); }
  T& operator*() & { return ValueUnsafe(); }
  const T* operator->() const { return &ValueUnsafe(); }
  T* operator->() { return &ValueUnsafe(); }

  /// Returns the value, or `alternative` when holding an error.
  T ValueOr(T alternative) const {
    return ok() ? std::get<T>(repr_) : std::move(alternative);
  }

 private:
  std::variant<Status, T> repr_;
};

}  // namespace util
}  // namespace graphitti

#endif  // GRAPHITTI_UTIL_RESULT_H_
