#include "ontology/ontology.h"

#include <algorithm>
#include <deque>
#include <functional>

#include "util/string_util.h"

namespace graphitti {
namespace ontology {

Ontology::Ontology(std::string name) : name_(std::move(name)) {}

util::Result<TermId> Ontology::AddTerm(std::string_view id, std::string_view label) {
  if (id.empty()) return util::Status::InvalidArgument("empty term id");
  if (term_index_.find(id) != term_index_.end()) {
    return util::Status::AlreadyExists("term '" + std::string(id) + "' already exists");
  }
  TermId tid = static_cast<TermId>(terms_.size());
  terms_.push_back({std::string(id), std::string(label), /*is_instance=*/false});
  forward_.emplace_back();
  reverse_.emplace_back();
  term_index_.emplace(std::string(id), tid);
  return tid;
}

util::Result<TermId> Ontology::AddInstance(std::string_view id, std::string_view label) {
  GRAPHITTI_ASSIGN_OR_RETURN(TermId tid, AddTerm(id, label));
  terms_[tid].is_instance = true;
  return tid;
}

RelationId Ontology::AddRelationType(std::string_view name, Quantifier quantifier) {
  auto it = relation_index_.find(name);
  if (it != relation_index_.end()) return it->second;
  RelationId rid = static_cast<RelationId>(relations_.size());
  relations_.push_back({std::string(name), quantifier});
  relation_index_.emplace(std::string(name), rid);
  return rid;
}

util::Status Ontology::AddEdge(TermId src, TermId dst, RelationId rel) {
  if (src >= terms_.size() || dst >= terms_.size()) {
    return util::Status::InvalidArgument("edge endpoint out of range");
  }
  if (rel >= relations_.size()) {
    return util::Status::InvalidArgument("unknown relation id");
  }
  if (src == dst) {
    return util::Status::InvalidArgument("self-loop edges are not allowed");
  }
  forward_[src].push_back({dst, rel});
  reverse_[dst].push_back({src, rel});
  ++num_edges_;
  return util::Status::OK();
}

TermId Ontology::FindTerm(std::string_view id) const {
  auto it = term_index_.find(id);
  return it == term_index_.end() ? kInvalidTerm : it->second;
}

RelationId Ontology::FindRelation(std::string_view name) const {
  auto it = relation_index_.find(name);
  return it == relation_index_.end() ? kInvalidRelation : it->second;
}

std::vector<TermId> Ontology::Parents(TermId from, RelationId rel) const {
  std::vector<TermId> out;
  if (from >= terms_.size()) return out;
  for (const Edge& e : forward_[from]) {
    if (rel == kInvalidRelation || e.rel == rel) out.push_back(e.other);
  }
  return out;
}

std::vector<TermId> Ontology::Children(TermId of, RelationId rel) const {
  std::vector<TermId> out;
  if (of >= terms_.size()) return out;
  for (const Edge& e : reverse_[of]) {
    if (rel == kInvalidRelation || e.rel == rel) out.push_back(e.other);
  }
  return out;
}

void Ontology::ReverseClosure(const std::vector<TermId>& starts,
                              const std::vector<RelationId>& rels,
                              std::vector<TermId>* visited,
                              std::vector<TermId>* instances) const {
  std::vector<bool> seen(terms_.size(), false);
  std::deque<TermId> queue;
  for (TermId s : starts) {
    if (s < terms_.size() && !seen[s]) {
      seen[s] = true;
      queue.push_back(s);
    }
  }
  auto rel_ok = [&](RelationId r) {
    if (rels.empty()) return true;
    return std::find(rels.begin(), rels.end(), r) != rels.end();
  };
  while (!queue.empty()) {
    TermId t = queue.front();
    queue.pop_front();
    if (visited != nullptr) visited->push_back(t);
    if (instances != nullptr && terms_[t].is_instance) instances->push_back(t);
    // Do not traverse *through* instance nodes; they are closure leaves.
    if (terms_[t].is_instance) continue;
    for (const Edge& e : reverse_[t]) {
      if (!rel_ok(e.rel) || seen[e.other]) continue;
      seen[e.other] = true;
      queue.push_back(e.other);
    }
  }
  if (visited != nullptr) std::sort(visited->begin(), visited->end());
  if (instances != nullptr) std::sort(instances->begin(), instances->end());
}

std::vector<TermId> Ontology::CI(TermId c) const {
  // Instances attach via instance_of; the concept hierarchy closes via is_a.
  std::vector<RelationId> rels;
  RelationId is_a = FindRelation("is_a");
  RelationId instance_of = FindRelation("instance_of");
  if (is_a != kInvalidRelation) rels.push_back(is_a);
  if (instance_of != kInvalidRelation) rels.push_back(instance_of);
  std::vector<TermId> instances;
  ReverseClosure({c}, rels, nullptr, &instances);
  return instances;
}

std::vector<TermId> Ontology::CRI(TermId c, RelationId rel) const {
  std::vector<TermId> instances;
  ReverseClosure({c}, {rel}, nullptr, &instances);
  return instances;
}

std::vector<TermId> Ontology::CmRI(TermId c, const std::vector<RelationId>& rels) const {
  std::vector<TermId> instances;
  ReverseClosure({c}, rels, nullptr, &instances);
  return instances;
}

std::vector<TermId> Ontology::mCmRI(const std::vector<TermId>& concepts,
                                    const std::vector<RelationId>& rels) const {
  std::vector<TermId> instances;
  ReverseClosure(concepts, rels, nullptr, &instances);
  return instances;
}

std::vector<TermId> Ontology::SubTree(TermId x, RelationId rel) const {
  std::vector<TermId> visited;
  ReverseClosure({x}, {rel}, &visited, nullptr);
  return visited;
}

util::Result<std::vector<TermId>> Ontology::SubTreeDiff(TermId x, TermId y,
                                                        RelationId rel) const {
  if (x >= terms_.size() || y >= terms_.size()) {
    return util::Status::InvalidArgument("term id out of range");
  }
  if (!IsDescendant(y, x, rel)) {
    return util::Status::InvalidArgument("'" + terms_[y].id + "' is not a descendant of '" +
                                         terms_[x].id + "' under relation '" +
                                         relations_[rel].name + "'");
  }
  std::vector<TermId> under_x = SubTree(x, rel);
  std::vector<TermId> under_y = SubTree(y, rel);
  std::vector<TermId> diff;
  std::set_difference(under_x.begin(), under_x.end(), under_y.begin(), under_y.end(),
                      std::back_inserter(diff));
  return diff;
}

bool Ontology::IsDescendant(TermId descendant, TermId ancestor, RelationId rel) const {
  if (descendant >= terms_.size() || ancestor >= terms_.size()) return false;
  if (descendant == ancestor) return false;
  std::vector<TermId> under = SubTree(ancestor, rel);
  return std::binary_search(under.begin(), under.end(), descendant);
}

std::vector<TermId> Ontology::AncestorClosure(TermId t, RelationId rel) const {
  std::vector<TermId> out;
  if (t >= terms_.size()) return out;
  std::vector<bool> seen(terms_.size(), false);
  std::deque<TermId> queue{t};
  seen[t] = true;
  while (!queue.empty()) {
    TermId cur = queue.front();
    queue.pop_front();
    out.push_back(cur);
    for (const Edge& e : forward_[cur]) {
      if (e.rel == rel && !seen[e.other]) {
        seen[e.other] = true;
        queue.push_back(e.other);
      }
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<TermId> Ontology::CommonAncestors(TermId a, TermId b, RelationId rel) const {
  std::vector<TermId> anc_a = AncestorClosure(a, rel);
  std::vector<TermId> anc_b = AncestorClosure(b, rel);
  std::vector<TermId> out;
  std::set_intersection(anc_a.begin(), anc_a.end(), anc_b.begin(), anc_b.end(),
                        std::back_inserter(out));
  return out;
}

namespace {

// Hop distances from `start` following forward `rel` edges only.
std::vector<size_t> AncestorDistances(size_t n, TermId start,
                                      const std::function<std::vector<TermId>(TermId)>& parents) {
  std::vector<size_t> dist(n, SIZE_MAX);
  std::deque<TermId> queue{start};
  dist[start] = 0;
  while (!queue.empty()) {
    TermId cur = queue.front();
    queue.pop_front();
    for (TermId p : parents(cur)) {
      if (dist[p] == SIZE_MAX) {
        dist[p] = dist[cur] + 1;
        queue.push_back(p);
      }
    }
  }
  return dist;
}

}  // namespace

std::vector<TermId> Ontology::NearestCommonAncestors(TermId a, TermId b,
                                                     RelationId rel) const {
  std::vector<TermId> out;
  if (a >= terms_.size() || b >= terms_.size()) return out;
  auto parents_fn = [&](TermId t) { return Parents(t, rel); };
  std::vector<size_t> da = AncestorDistances(terms_.size(), a, parents_fn);
  std::vector<size_t> db = AncestorDistances(terms_.size(), b, parents_fn);
  size_t best = SIZE_MAX;
  for (TermId t = 0; t < terms_.size(); ++t) {
    if (da[t] == SIZE_MAX || db[t] == SIZE_MAX) continue;
    size_t total = da[t] + db[t];
    if (total < best) {
      best = total;
      out.clear();
    }
    if (total == best) out.push_back(t);
  }
  return out;
}

util::Result<std::vector<TermId>> Ontology::PathBetween(TermId a, TermId b) const {
  if (a >= terms_.size() || b >= terms_.size()) {
    return util::Status::InvalidArgument("term id out of range");
  }
  if (a == b) return std::vector<TermId>{a};
  constexpr TermId kUnvisited = kInvalidTerm;
  std::vector<TermId> parent(terms_.size(), kUnvisited);
  std::deque<TermId> queue{a};
  parent[a] = a;
  bool found = false;
  while (!queue.empty() && !found) {
    TermId cur = queue.front();
    queue.pop_front();
    auto visit = [&](TermId other) {
      if (found || parent[other] != kUnvisited) return;
      parent[other] = cur;
      if (other == b) {
        found = true;
        return;
      }
      queue.push_back(other);
    };
    for (const Edge& e : forward_[cur]) visit(e.other);
    for (const Edge& e : reverse_[cur]) visit(e.other);
  }
  if (!found) {
    return util::Status::NotFound("terms '" + terms_[a].id + "' and '" + terms_[b].id +
                                  "' are not connected");
  }
  std::vector<TermId> path;
  for (TermId cur = b; cur != a; cur = parent[cur]) path.push_back(cur);
  path.push_back(a);
  std::reverse(path.begin(), path.end());
  return path;
}

std::vector<TermId> Ontology::FindTermsByLabel(std::string_view needle) const {
  std::vector<TermId> out;
  for (TermId t = 0; t < terms_.size(); ++t) {
    if (util::ContainsIgnoreCase(terms_[t].label, needle) ||
        util::ContainsIgnoreCase(terms_[t].id, needle)) {
      out.push_back(t);
    }
  }
  return out;
}

}  // namespace ontology
}  // namespace graphitti
