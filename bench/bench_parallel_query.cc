// Intra-query parallel scaling: one query, many workers. Where
// bench_concurrent_query measures many independent readers, this bench
// gives a SINGLE fig-3-style query a worker budget
// (query::ExecutorOptions::workers) and tracks how the three parallel
// sections scale: chunked candidate filtering (XPath evaluation over the
// content stream), per-worker join row shards, and concurrent
// per-terminal BFS tree expansion inside the page's ConnectBatch. All
// three merge in deterministic chunk order, so results are bit-identical
// across worker counts — the only thing that may change is the wall
// clock.
//
// Run on a multi-core box (the CI bench lane); on one core the pool is
// empty and every series collapses to the workers=1 number.
#include <benchmark/benchmark.h>

#include <cstdlib>
#include <map>
#include <memory>
#include <string>

#include "core/graphitti.h"
#include "core/workload.h"
#include "query/executor.h"

namespace {

using graphitti::core::GenerateInfluenzaStudy;
using graphitti::core::Graphitti;
using graphitti::core::InfluenzaParams;
using graphitti::query::ExecutorOptions;

Graphitti& FluInstance(size_t n) {
  static std::map<size_t, std::unique_ptr<Graphitti>> cache;
  auto it = cache.find(n);
  if (it == cache.end()) {
    auto g = std::make_unique<Graphitti>();
    InfluenzaParams params;
    params.num_annotations = n;
    params.protease_fraction = 0.15;
    if (!GenerateInfluenzaStudy(g.get(), params).ok()) std::abort();
    it = cache.emplace(n, std::move(g)).first;
  }
  return *it->second;
}

ExecutorOptions Workers(benchmark::State& state) {
  ExecutorOptions opts;
  opts.workers = static_cast<size_t>(state.range(0));
  return opts;
}

// The flagship pair-of-protease join (join-dominated: tens of thousands of
// binding rows sharded across workers, one 10-row page of connects).
void BM_Parallel_ProteaseJoin(benchmark::State& state) {
  Graphitti& g = FluInstance(2000);
  const ExecutorOptions opts = Workers(state);
  const std::string query = R"(FIND GRAPH WHERE {
      ?a1 CONTAINS "protease" ; ?a2 CONTAINS "protease" ;
      ?s1 IS REFERENT ; ?s1 DOMAIN "flu:seg2" ;
      ?s2 IS REFERENT ; ?s2 DOMAIN "flu:seg2" ;
      ?a1 ANNOTATES ?s1 ; ?a2 ANNOTATES ?s2 ;
    } CONSTRAIN consecutive(?s1, ?s2), disjoint(?s1, ?s2) LIMIT 10 PAGE 1)";
  size_t items = 0;
  for (auto _ : state) {
    auto r = g.Query(query, opts);
    if (r.ok()) items += r->items.size();
  }
  benchmark::DoNotOptimize(items);
  state.counters["workers"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_Parallel_ProteaseJoin)
    ->Arg(1)->Arg(2)->Arg(4)
    ->Unit(benchmark::kMillisecond);

// Candidate-filter bound: XPath predicate evaluated over every content
// candidate (the chunked ForEachCandidate path).
void BM_Parallel_XPathFilter(benchmark::State& state) {
  Graphitti& g = FluInstance(5000);
  const ExecutorOptions opts = Workers(state);
  const std::string query =
      "FIND CONTENTS WHERE { ?a CONTAINS \"segment\" ; "
      "?a XPATH \"/annotation[contains(body,'protease')]\" }";
  size_t items = 0;
  for (auto _ : state) {
    auto r = g.Query(query, opts);
    if (r.ok()) items += r->items.size();
  }
  benchmark::DoNotOptimize(items);
  state.counters["workers"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_Parallel_XPathFilter)
    ->Arg(1)->Arg(2)->Arg(4)
    ->Unit(benchmark::kMillisecond);

// Connect-bound: page flips over a subgraph-heavy result. The first Query
// caches the ConnectBatch (with its worker budget) on the result; each
// iteration flips to a fresh page, so the measured work is per-terminal
// BFS tree growth — the batch's parallel section.
void BM_Parallel_PageFlipConnects(benchmark::State& state) {
  Graphitti& g = FluInstance(2000);
  const ExecutorOptions opts = Workers(state);
  const std::string query = R"(FIND GRAPH WHERE {
      ?a1 CONTAINS "protease" ; ?a2 CONTAINS "protease" ;
      ?s1 IS REFERENT ; ?s1 DOMAIN "flu:seg2" ;
      ?s2 IS REFERENT ; ?s2 DOMAIN "flu:seg2" ;
      ?a1 ANNOTATES ?s1 ; ?a2 ANNOTATES ?s2 ;
    } LIMIT 8 PAGE 1)";
  auto r = g.Query(query, opts);
  if (!r.ok() || r->total_pages < 2) std::abort();
  size_t page = 1;
  size_t nodes = 0;
  for (auto _ : state) {
    page = page % r->total_pages + 1;  // walk pages round-robin
    if (!g.MaterializePage(&*r, page).ok()) std::abort();
    for (const auto& item : r->Page()) nodes += item.subgraph.nodes.size();
  }
  benchmark::DoNotOptimize(nodes);
  state.counters["workers"] = static_cast<double>(state.range(0));
  state.counters["trees_built"] = static_cast<double>(r->stats.connect_trees_built);
}
BENCHMARK(BM_Parallel_PageFlipConnects)
    ->Arg(1)->Arg(2)->Arg(4)
    ->Unit(benchmark::kMillisecond);

}  // namespace
