#include "substructure/substructure.h"

#include <algorithm>

namespace graphitti {
namespace substructure {

std::string_view SubTypeToString(SubType type) {
  switch (type) {
    case SubType::kInterval:
      return "interval";
    case SubType::kRegion:
      return "region";
    case SubType::kNodeSet:
      return "node-set";
    case SubType::kBlockSet:
      return "block-set";
    case SubType::kTreeClade:
      return "tree-clade";
  }
  return "?";
}

TypeTraits TraitsOf(SubType type) {
  switch (type) {
    case SubType::kInterval:
      return {.ordered = true, .convex = true};
    case SubType::kRegion:
      return {.ordered = false, .convex = true};
    case SubType::kNodeSet:
      return {.ordered = false, .convex = false};
    case SubType::kBlockSet:
      // RowIds give relational blocks a usable total order (insertion order),
      // so `next` is meaningful; blocks are not convex.
      return {.ordered = true, .convex = false};
    case SubType::kTreeClade:
      return {.ordered = false, .convex = false};
  }
  return {};
}

namespace {
std::vector<uint64_t> SortedUnique(std::vector<uint64_t> v) {
  std::sort(v.begin(), v.end());
  v.erase(std::unique(v.begin(), v.end()), v.end());
  return v;
}
}  // namespace

Substructure Substructure::MakeInterval(std::string domain, spatial::Interval interval) {
  Substructure s;
  s.type_ = SubType::kInterval;
  s.domain_ = std::move(domain);
  s.interval_ = interval;
  return s;
}

Substructure Substructure::MakeRegion(std::string coordinate_system, spatial::Rect rect) {
  Substructure s;
  s.type_ = SubType::kRegion;
  s.domain_ = std::move(coordinate_system);
  s.rect_ = rect;
  return s;
}

Substructure Substructure::MakeNodeSet(std::string graph_id, std::vector<uint64_t> nodes) {
  Substructure s;
  s.type_ = SubType::kNodeSet;
  s.domain_ = std::move(graph_id);
  s.elements_ = SortedUnique(std::move(nodes));
  return s;
}

Substructure Substructure::MakeBlockSet(std::string table, std::vector<uint64_t> row_ids) {
  Substructure s;
  s.type_ = SubType::kBlockSet;
  s.domain_ = std::move(table);
  s.elements_ = SortedUnique(std::move(row_ids));
  return s;
}

Substructure Substructure::MakeTreeClade(std::string tree_id, std::vector<uint64_t> leaf_ids) {
  Substructure s;
  s.type_ = SubType::kTreeClade;
  s.domain_ = std::move(tree_id);
  s.elements_ = SortedUnique(std::move(leaf_ids));
  return s;
}

bool Substructure::valid() const {
  if (domain_.empty()) return false;
  switch (type_) {
    case SubType::kInterval:
      return interval_.valid();
    case SubType::kRegion:
      return rect_.valid();
    case SubType::kNodeSet:
    case SubType::kBlockSet:
    case SubType::kTreeClade:
      return !elements_.empty();
  }
  return false;
}

bool Substructure::operator==(const Substructure& other) const {
  if (type_ != other.type_ || domain_ != other.domain_) return false;
  switch (type_) {
    case SubType::kInterval:
      return interval_ == other.interval_;
    case SubType::kRegion:
      return rect_ == other.rect_;
    default:
      return elements_ == other.elements_;
  }
}

std::string Substructure::ToString() const {
  std::string_view type_name = SubTypeToString(type_);
  std::string out;
  // One allocation for the common interval case: this string is built once
  // per mark on bulk ingest (it is the referent dedup key).
  out.reserve(type_name.size() + 1 + domain_.size() + 48);
  out += type_name;
  out += '@';
  out += domain_;
  switch (type_) {
    case SubType::kInterval:
      out += '[';
      out += std::to_string(interval_.lo);
      out += ',';
      out += std::to_string(interval_.hi);
      out += ']';
      break;
    case SubType::kRegion:
      out += rect_.ToString();
      break;
    default: {
      out += "{";
      for (size_t i = 0; i < elements_.size() && i < 8; ++i) {
        if (i) out += ",";
        out += std::to_string(elements_[i]);
      }
      if (elements_.size() > 8) out += ",...";
      out += "}";
    }
  }
  return out;
}

}  // namespace substructure
}  // namespace graphitti
