// AdmissionController: engine-level load shedding. Bounds how many reads
// and commits run concurrently, with a bounded wait queue per class — a
// request past both bounds is rejected immediately, and a queued request
// that cannot get a slot within the queue timeout is rejected with
// kResourceExhausted rather than waiting unboundedly. This is the
// backpressure substrate the planned multi-tenant server front door
// needs: shedding happens at the engine boundary, before any snapshot is
// pinned or scratch allocated.
//
// The timed wait uses CondVar::WaitFor in an explicit while-loop keyed to
// an absolute deadline, so a spurious wakeup or a signal racing the
// timeout resolves by re-checking the slot predicate: a waiter that is
// signalled with a free slot before its deadline always wins the slot,
// even if the clock has meanwhile passed the deadline check it would have
// failed (slot availability is re-read before the time is).
//
// Locking: one mutex guards both classes' slot/waiter counts (admission
// events are rare relative to the work they admit). Counters are atomics
// so Graphitti::Health() can snapshot them without taking this lock.
#ifndef GRAPHITTI_UTIL_ADMISSION_H_
#define GRAPHITTI_UTIL_ADMISSION_H_

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>

#include "util/status.h"
#include "util/thread_annotations.h"

namespace graphitti {
namespace util {

struct AdmissionOptions {
  /// Concurrent in-flight limit per class; 0 = unlimited (class unmanaged).
  size_t max_concurrent_reads = 0;
  size_t max_concurrent_commits = 0;
  /// Requests allowed to wait for a slot, per class, beyond the in-flight
  /// limit. A request arriving with the queue full is rejected at once.
  size_t max_queued = 16;
  /// How long a queued request may wait before rejection.
  std::chrono::milliseconds queue_timeout{100};
};

/// Point-in-time admission statistics (all-time totals).
struct AdmissionCounters {
  uint64_t admitted = 0;
  uint64_t rejected_queue_full = 0;
  uint64_t rejected_timeout = 0;
};

class AdmissionController {
 public:
  enum class WorkClass { kRead, kCommit };

  explicit AdmissionController(const AdmissionOptions& options)
      : options_(options) {}
  AdmissionController(const AdmissionController&) = delete;
  AdmissionController& operator=(const AdmissionController&) = delete;

  /// RAII admission slot. A default-constructed (or moved-from) ticket
  /// holds nothing. Destruction releases the slot and wakes one waiter.
  class Ticket {
   public:
    Ticket() = default;
    Ticket(Ticket&& other) noexcept
        : ctrl_(other.ctrl_), work_class_(other.work_class_) {
      other.ctrl_ = nullptr;
    }
    Ticket& operator=(Ticket&& other) noexcept {
      if (this != &other) {
        Release();
        ctrl_ = other.ctrl_;
        work_class_ = other.work_class_;
        other.ctrl_ = nullptr;
      }
      return *this;
    }
    Ticket(const Ticket&) = delete;
    Ticket& operator=(const Ticket&) = delete;
    ~Ticket() { Release(); }

    void Release() {
      if (ctrl_ != nullptr) {
        ctrl_->ReleaseSlot(work_class_);
        ctrl_ = nullptr;
      }
    }

   private:
    friend class AdmissionController;
    Ticket(AdmissionController* ctrl, WorkClass wc)
        : ctrl_(ctrl), work_class_(wc) {}
    AdmissionController* ctrl_ = nullptr;
    WorkClass work_class_ = WorkClass::kRead;
  };

  /// Acquire a slot for `work_class`, waiting up to the queue timeout if
  /// the class is saturated but the queue has room. On success `*ticket`
  /// holds the slot; on kResourceExhausted nothing is held.
  Status Admit(WorkClass work_class, Ticket* ticket) {
    const size_t limit = LimitFor(work_class);
    if (limit == 0) {
      // Unmanaged class: hand out an empty ticket, count nothing.
      *ticket = Ticket();
      return Status::OK();
    }
    MutexLock lock(mu_);
    ClassState& cs = StateFor(work_class);
    if (cs.active < limit) {
      cs.active++;
      counters_.admitted.fetch_add(1, std::memory_order_relaxed);
      *ticket = Ticket(this, work_class);
      return Status::OK();
    }
    if (cs.waiting >= options_.max_queued) {
      counters_.rejected_queue_full.fetch_add(1, std::memory_order_relaxed);
      return Status::ResourceExhausted(
          "admission queue full: " + ClassName(work_class) + " concurrency " +
          std::to_string(limit) + " reached with " +
          std::to_string(cs.waiting) + " already queued");
    }
    cs.waiting++;
    const auto deadline = std::chrono::steady_clock::now() + options_.queue_timeout;
    // Explicit predicate loop: a signal that frees a slot beats a deadline
    // that has technically passed, because the slot check comes first.
    while (cs.active >= limit) {
      const auto now = std::chrono::steady_clock::now();
      if (now >= deadline) {
        cs.waiting--;
        counters_.rejected_timeout.fetch_add(1, std::memory_order_relaxed);
        return Status::ResourceExhausted(
            "admission timed out: no " + ClassName(work_class) +
            " slot freed within " +
            std::to_string(options_.queue_timeout.count()) + "ms");
      }
      cs.cv.WaitFor(mu_, deadline - now);
    }
    cs.waiting--;
    cs.active++;
    counters_.admitted.fetch_add(1, std::memory_order_relaxed);
    *ticket = Ticket(this, work_class);
    return Status::OK();
  }

  /// Lock-free counter snapshot (totals are monotonic; a racing admit may
  /// or may not be included — fine for health reporting).
  AdmissionCounters Counters() const {
    AdmissionCounters c;
    c.admitted = counters_.admitted.load(std::memory_order_relaxed);
    c.rejected_queue_full =
        counters_.rejected_queue_full.load(std::memory_order_relaxed);
    c.rejected_timeout =
        counters_.rejected_timeout.load(std::memory_order_relaxed);
    return c;
  }

  const AdmissionOptions& options() const { return options_; }

 private:
  struct ClassState {
    size_t active = 0;   // guarded by the owning controller's mu_
    size_t waiting = 0;  // guarded by the owning controller's mu_
    CondVar cv;
  };

  size_t LimitFor(WorkClass wc) const {
    return wc == WorkClass::kRead ? options_.max_concurrent_reads
                                  : options_.max_concurrent_commits;
  }
  ClassState& StateFor(WorkClass wc) REQUIRES(mu_) {
    return wc == WorkClass::kRead ? reads_ : commits_;
  }
  static std::string ClassName(WorkClass wc) {
    return wc == WorkClass::kRead ? "read" : "commit";
  }

  void ReleaseSlot(WorkClass wc) {
    MutexLock lock(mu_);
    ClassState& cs = StateFor(wc);
    cs.active--;
    cs.cv.NotifyOne();
  }

  const AdmissionOptions options_;
  Mutex mu_;
  // ClassState's counts are guarded by mu_ (an inner struct cannot name
  // its owner in a GUARDED_BY — same pattern as ThreadPool::Job); both
  // members are only touched under mu_.
  ClassState reads_ GUARDED_BY(mu_);
  ClassState commits_ GUARDED_BY(mu_);

  struct {
    std::atomic<uint64_t> admitted{0};
    std::atomic<uint64_t> rejected_queue_full{0};
    std::atomic<uint64_t> rejected_timeout{0};
  } counters_;
};

}  // namespace util
}  // namespace graphitti

#endif  // GRAPHITTI_UTIL_ADMISSION_H_
