#include "relational/csv.h"

#include "util/string_util.h"

namespace graphitti {
namespace relational {

namespace {

bool NeedsQuoting(std::string_view field, char delimiter) {
  for (char c : field) {
    if (c == delimiter || c == '"' || c == '\n' || c == '\r') return true;
  }
  return false;
}

std::string QuoteField(std::string_view field, char delimiter) {
  if (!NeedsQuoting(field, delimiter)) return std::string(field);
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += "\"\"";
    else out.push_back(c);
  }
  out += '"';
  return out;
}

std::string CellToCsv(const Value& v, char delimiter) {
  switch (v.type()) {
    case ValueType::kNull:
      return "";
    case ValueType::kInt64:
      return std::to_string(v.as_int());
    case ValueType::kDouble: {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.17g", v.as_double());
      return buf;
    }
    case ValueType::kString:
      return QuoteField(v.as_string(), delimiter);
    case ValueType::kBytes: {
      static const char* kHex = "0123456789abcdef";
      std::string out = "0x";
      for (uint8_t b : v.as_bytes()) {
        out.push_back(kHex[b >> 4]);
        out.push_back(kHex[b & 0xf]);
      }
      return out;
    }
  }
  return "";
}

util::Result<Value> CsvToCell(const std::string& field, const Column& column) {
  if (field.empty()) {
    return Value::Null();
  }
  switch (column.type) {
    case ValueType::kInt64: {
      int64_t v = 0;
      if (!util::ParseInt64(field, &v)) {
        return util::Status::ParseError("'" + field + "' is not an integer (column '" +
                                        column.name + "')");
      }
      return Value::Int(v);
    }
    case ValueType::kDouble: {
      double v = 0;
      if (!util::ParseDouble(field, &v)) {
        return util::Status::ParseError("'" + field + "' is not a number (column '" +
                                        column.name + "')");
      }
      return Value::Real(v);
    }
    case ValueType::kString:
      return Value::Str(field);
    case ValueType::kBytes: {
      if (!util::StartsWith(field, "0x") || field.size() % 2 != 0) {
        return util::Status::ParseError("blob column '" + column.name +
                                        "' expects 0x-prefixed hex");
      }
      auto nibble = [](char c) -> int {
        if (c >= '0' && c <= '9') return c - '0';
        if (c >= 'a' && c <= 'f') return c - 'a' + 10;
        if (c >= 'A' && c <= 'F') return c - 'A' + 10;
        return -1;
      };
      std::vector<uint8_t> bytes;
      for (size_t i = 2; i + 1 < field.size(); i += 2) {
        int hi = nibble(field[i]);
        int lo = nibble(field[i + 1]);
        if (hi < 0 || lo < 0) {
          return util::Status::ParseError("bad hex in blob column '" + column.name + "'");
        }
        bytes.push_back(static_cast<uint8_t>(hi << 4 | lo));
      }
      return Value::Blob(std::move(bytes));
    }
    case ValueType::kNull:
      return Value::Null();
  }
  return Value::Null();
}

}  // namespace

util::Result<std::vector<std::string>> ParseCsvRecord(std::string_view line,
                                                      char delimiter) {
  std::vector<std::string> fields;
  std::string current;
  bool in_quotes = false;
  size_t i = 0;
  while (i < line.size()) {
    char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          current.push_back('"');
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        current.push_back(c);
      }
    } else if (c == '"') {
      if (!current.empty()) {
        return util::Status::ParseError("unexpected quote mid-field");
      }
      in_quotes = true;
    } else if (c == delimiter) {
      fields.push_back(std::move(current));
      current.clear();
    } else if (c == '\r') {
      // tolerated (CRLF)
    } else {
      current.push_back(c);
    }
    ++i;
  }
  if (in_quotes) return util::Status::ParseError("unterminated quoted field");
  fields.push_back(std::move(current));
  return fields;
}

std::string ExportCsv(const Table& table, const CsvOptions& options) {
  std::string out;
  const Schema& schema = table.schema();
  if (options.header) {
    for (size_t i = 0; i < schema.num_columns(); ++i) {
      if (i) out.push_back(options.delimiter);
      out += QuoteField(schema.column(i).name, options.delimiter);
    }
    out += '\n';
  }
  table.Scan([&](RowId, const Row& row) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (i) out.push_back(options.delimiter);
      out += CellToCsv(row[i], options.delimiter);
    }
    out += '\n';
  });
  return out;
}

util::Result<size_t> ImportCsv(Table* table, std::string_view csv,
                               const CsvOptions& options) {
  if (table == nullptr) return util::Status::InvalidArgument("null table");
  const Schema& schema = table->schema();

  // Split into records, honoring quoted newlines.
  std::vector<std::string> records;
  {
    std::string current;
    bool in_quotes = false;
    for (char c : csv) {
      if (c == '"') in_quotes = !in_quotes;
      if (c == '\n' && !in_quotes) {
        records.push_back(std::move(current));
        current.clear();
      } else {
        current.push_back(c);
      }
    }
    if (!current.empty()) records.push_back(std::move(current));
  }

  size_t start = 0;
  if (options.header) {
    if (records.empty()) return util::Status::ParseError("missing CSV header");
    GRAPHITTI_ASSIGN_OR_RETURN(std::vector<std::string> names,
                               ParseCsvRecord(records[0], options.delimiter));
    if (names.size() != schema.num_columns()) {
      return util::Status::ParseError("header has " + std::to_string(names.size()) +
                                      " columns, schema has " +
                                      std::to_string(schema.num_columns()));
    }
    for (size_t i = 0; i < names.size(); ++i) {
      if (names[i] != schema.column(i).name) {
        return util::Status::ParseError("header column " + std::to_string(i) + " is '" +
                                        names[i] + "', expected '" + schema.column(i).name +
                                        "'");
      }
    }
    start = 1;
  }

  size_t inserted = 0;
  for (size_t r = start; r < records.size(); ++r) {
    if (util::Trim(records[r]).empty()) continue;
    GRAPHITTI_ASSIGN_OR_RETURN(std::vector<std::string> fields,
                               ParseCsvRecord(records[r], options.delimiter));
    if (fields.size() != schema.num_columns()) {
      return util::Status::ParseError("record " + std::to_string(r + 1) + " has " +
                                      std::to_string(fields.size()) + " fields, want " +
                                      std::to_string(schema.num_columns()));
    }
    Row row;
    for (size_t i = 0; i < fields.size(); ++i) {
      GRAPHITTI_ASSIGN_OR_RETURN(Value v, CsvToCell(fields[i], schema.column(i)));
      row.push_back(std::move(v));
    }
    GRAPHITTI_RETURN_NOT_OK(table->Insert(std::move(row)).status());
    ++inserted;
  }
  return inserted;
}

}  // namespace relational
}  // namespace graphitti
