// AST for Graphitti's query language: "graph queries that resemble SPARQL
// expressions extended to handle (i) XQuery-like path expressions on
// a-graphs, (ii) type-specific predicates on interval trees, (iii) XQuery
// fragments to retrieve fragments of annotation" (§II).
//
// Concrete syntax (see query/parser.h for the grammar):
//
//   FIND GRAPH WHERE {
//     ?a IS CONTENT ;
//     ?a CONTAINS "protease" ;
//     ?s IS REFERENT ; ?s TYPE interval ; ?s DOMAIN "flu:seg4" ;
//     ?s OVERLAPS [0, 1700] ;
//     ?a ANNOTATES ?s ;
//   }
//   CONSTRAIN consecutive(?s1,?s2,?s3,?s4), disjoint(?s1,?s2,?s3,?s4)
//   LIMIT 10 PAGE 1
#ifndef GRAPHITTI_QUERY_AST_H_
#define GRAPHITTI_QUERY_AST_H_

#include <cstdint>
#include <string>
#include <vector>

#include "relational/predicate.h"
#include "spatial/interval.h"
#include "spatial/rect.h"

namespace graphitti {
namespace query {

/// What the query returns (§II: "(a) a collection of heterogeneous
/// substructures (b) fragments of XML documents and (c) connection
/// subgraphs").
enum class Target {
  kContents,   // annotation contents
  kReferents,  // heterogeneous substructures
  kGraph,      // connection subgraphs (one per result page)
  kFragments,  // XML fragments extracted via RETURN XPATH
  kCount,      // count of distinct bindings of the target variable
};

/// Kinds a query variable may range over (mirrors agraph::NodeKind).
enum class VarKind { kAny, kContent, kReferent, kTerm, kObject };

/// One WHERE-clause atom.
struct Clause {
  enum class Kind {
    kIs,         // ?x IS CONTENT|REFERENT|TERM|OBJECT
    kContains,   // ?c CONTAINS "phrase"            (content keyword/phrase)
    kXPath,      // ?c XPATH "/annotation/..."      (content path filter)
    kType,        // ?r TYPE interval|region|node-set|block-set|tree-clade
    kDomain,      // ?r DOMAIN "chr1"                (referent domain)
    kOverlaps,    // ?r OVERLAPS [lo,hi] | RECT[...] (spatial window)
    kContainedIn, // ?r CONTAINEDIN [lo,hi] | RECT[...] (containment window)
    kCreator,     // ?c CREATOR "name"               (dc:creator sugar)
    kTerm,       // ?t TERM "NIF:0001"              (exact ontology term)
    kTermBelow,  // ?t TERM BELOW "NIF:0001"        (ontology subtree expansion)
    kTable,      // ?o TABLE "dna" [FILTER col op lit [AND ...]]
    kAnnotates,  // ?c ANNOTATES ?r                 (a-graph edge)
    kRefersTo,   // ?c REFERS ?t
    kOfObject,   // ?r OF ?o
    kConnected,  // ?x CONNECTED ?y                 (any a-graph path)
  };

  Kind kind;
  std::string var;        // subject variable (without '?')
  std::string var2;       // object variable for edge clauses
  std::string text;       // phrase / xpath / domain / term / table / type name
  VarKind is_kind = VarKind::kAny;
  spatial::Interval interval;  // kOverlaps 1D
  spatial::Rect rect;          // kOverlaps 2D/3D
  bool rect_window = false;    // kOverlaps: true when rect is meaningful
  relational::Predicate table_filter = relational::Predicate::True();  // kTable
  size_t max_hops = SIZE_MAX;  // kConnected

  std::string ToString() const;
};

/// Graph constraints over bound referent variables (the Fig. 3 left-panel
/// conditions). All decompose to pairwise predicates at execution time.
struct Constraint {
  enum class Kind {
    kConsecutive,  // same domain, starts strictly increasing in listed order
    kDisjoint,     // pairwise non-overlapping
    kOverlapping,  // pairwise overlapping
    kSameDomain,   // all in one domain
  };
  Kind kind;
  std::vector<std::string> vars;

  std::string ToString() const;
};

struct Query {
  Target target = Target::kContents;
  /// Result variable ("" = first declared variable of the target kind).
  std::string target_var;
  /// For kFragments: the XPath applied to each matched content.
  std::string return_xpath;
  std::vector<Clause> clauses;
  std::vector<Constraint> constraints;
  size_t limit = SIZE_MAX;  // page size
  size_t page = 1;          // 1-based

  std::string ToString() const;
};

}  // namespace query
}  // namespace graphitti

#endif  // GRAPHITTI_QUERY_AST_H_
