#include "agraph/agraph.h"

#include <algorithm>
#include <deque>

namespace graphitti {
namespace agraph {

std::string_view NodeKindToString(NodeKind kind) {
  switch (kind) {
    case NodeKind::kContent:
      return "content";
    case NodeKind::kReferent:
      return "referent";
    case NodeKind::kOntologyTerm:
      return "term";
    case NodeKind::kDataObject:
      return "object";
  }
  return "?";
}

bool SubGraph::ContainsNode(const NodeRef& ref) const {
  return std::find(nodes.begin(), nodes.end(), ref) != nodes.end();
}

uint32_t AGraph::InternLabel(std::string_view label) {
  auto it = label_index_.find(label);
  if (it != label_index_.end()) return it->second;
  uint32_t id = static_cast<uint32_t>(labels_.size());
  labels_.emplace_back(label);
  label_index_.emplace(std::string(label), id);
  return id;
}

util::Result<uint32_t> AGraph::DenseIndex(NodeRef ref) const {
  auto it = index_.find(ref);
  if (it == index_.end()) {
    return util::Status::NotFound("node " + ref.ToString() + " not in a-graph");
  }
  return it->second;
}

util::Status AGraph::AddNode(NodeRef ref, std::string label) {
  if (index_.find(ref) != index_.end()) {
    return util::Status::AlreadyExists("node " + ref.ToString() + " already in a-graph");
  }
  uint32_t idx = static_cast<uint32_t>(refs_.size());
  index_.emplace(ref, idx);
  refs_.push_back(ref);
  node_labels_.push_back(std::move(label));
  out_.emplace_back();
  in_.emplace_back();
  return util::Status::OK();
}

void AGraph::EnsureNode(NodeRef ref, std::string_view label) {
  auto it = index_.find(ref);
  if (it != index_.end()) {
    if (!label.empty() && node_labels_[it->second].empty()) {
      node_labels_[it->second] = std::string(label);
    }
    return;
  }
  (void)AddNode(ref, std::string(label));
}

util::Status AGraph::RemoveNode(NodeRef ref) {
  GRAPHITTI_ASSIGN_OR_RETURN(uint32_t idx, DenseIndex(ref));
  // Drop incident edges from neighbours' adjacency.
  for (const Edge& e : out_[idx]) {
    auto& vec = in_[e.other];
    vec.erase(std::remove_if(vec.begin(), vec.end(),
                             [&](const Edge& x) { return x.other == idx; }),
              vec.end());
  }
  for (const Edge& e : in_[idx]) {
    auto& vec = out_[e.other];
    vec.erase(std::remove_if(vec.begin(), vec.end(),
                             [&](const Edge& x) { return x.other == idx; }),
              vec.end());
  }
  num_edges_ -= out_[idx].size() + in_[idx].size();
  out_[idx].clear();
  in_[idx].clear();
  // Swap-with-last compaction to keep dense indexes dense.
  uint32_t last = static_cast<uint32_t>(refs_.size()) - 1;
  if (idx != last) {
    // Rewire references to `last` as `idx`.
    for (const Edge& e : out_[last]) {
      for (Edge& x : in_[e.other]) {
        if (x.other == last) x.other = idx;
      }
    }
    for (const Edge& e : in_[last]) {
      for (Edge& x : out_[e.other]) {
        if (x.other == last) x.other = idx;
      }
    }
    refs_[idx] = refs_[last];
    node_labels_[idx] = std::move(node_labels_[last]);
    out_[idx] = std::move(out_[last]);
    in_[idx] = std::move(in_[last]);
    index_[refs_[idx]] = idx;
  }
  refs_.pop_back();
  node_labels_.pop_back();
  out_.pop_back();
  in_.pop_back();
  index_.erase(ref);
  return util::Status::OK();
}

util::Status AGraph::AddEdge(NodeRef from, NodeRef to, std::string_view label) {
  GRAPHITTI_ASSIGN_OR_RETURN(uint32_t fi, DenseIndex(from));
  GRAPHITTI_ASSIGN_OR_RETURN(uint32_t ti, DenseIndex(to));
  uint32_t li = InternLabel(label);
  out_[fi].push_back({ti, li});
  in_[ti].push_back({fi, li});
  ++num_edges_;
  return util::Status::OK();
}

util::Status AGraph::RemoveEdge(NodeRef from, NodeRef to, std::string_view label) {
  GRAPHITTI_ASSIGN_OR_RETURN(uint32_t fi, DenseIndex(from));
  GRAPHITTI_ASSIGN_OR_RETURN(uint32_t ti, DenseIndex(to));
  auto lit = label_index_.find(label);
  if (lit == label_index_.end()) {
    return util::Status::NotFound("edge label '" + std::string(label) + "' unknown");
  }
  uint32_t li = lit->second;
  auto& outs = out_[fi];
  auto oit = std::find_if(outs.begin(), outs.end(),
                          [&](const Edge& e) { return e.other == ti && e.label == li; });
  if (oit == outs.end()) {
    return util::Status::NotFound("edge " + from.ToString() + " -[" + std::string(label) +
                                  "]-> " + to.ToString() + " not found");
  }
  outs.erase(oit);
  auto& ins = in_[ti];
  auto iit = std::find_if(ins.begin(), ins.end(),
                          [&](const Edge& e) { return e.other == fi && e.label == li; });
  if (iit != ins.end()) ins.erase(iit);
  --num_edges_;
  return util::Status::OK();
}

bool AGraph::HasEdge(NodeRef from, NodeRef to, std::string_view label) const {
  auto fi = DenseIndex(from);
  auto ti = DenseIndex(to);
  if (!fi.ok() || !ti.ok()) return false;
  auto lit = label_index_.find(label);
  if (lit == label_index_.end()) return false;
  for (const Edge& e : out_[*fi]) {
    if (e.other == *ti && e.label == lit->second) return true;
  }
  return false;
}

std::string_view AGraph::NodeLabel(NodeRef ref) const {
  auto idx = DenseIndex(ref);
  if (!idx.ok()) return "";
  return node_labels_[*idx];
}

std::vector<EdgeRecord> AGraph::OutEdges(NodeRef ref) const {
  std::vector<EdgeRecord> out;
  auto idx = DenseIndex(ref);
  if (!idx.ok()) return out;
  for (const Edge& e : out_[*idx]) {
    out.push_back({ref, refs_[e.other], labels_[e.label]});
  }
  return out;
}

std::vector<EdgeRecord> AGraph::InEdges(NodeRef ref) const {
  std::vector<EdgeRecord> out;
  auto idx = DenseIndex(ref);
  if (!idx.ok()) return out;
  for (const Edge& e : in_[*idx]) {
    out.push_back({refs_[e.other], ref, labels_[e.label]});
  }
  return out;
}

std::vector<NodeRef> AGraph::Neighbors(NodeRef ref, bool directed,
                                       std::string_view label) const {
  std::vector<NodeRef> out;
  auto idx = DenseIndex(ref);
  if (!idx.ok()) return out;
  auto match = [&](const Edge& e) {
    return label.empty() || labels_[e.label] == label;
  };
  for (const Edge& e : out_[*idx]) {
    if (match(e)) out.push_back(refs_[e.other]);
  }
  if (!directed) {
    for (const Edge& e : in_[*idx]) {
      if (match(e)) out.push_back(refs_[e.other]);
    }
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::vector<NodeRef> AGraph::NodesOfKind(NodeKind kind) const {
  std::vector<NodeRef> out;
  for (const NodeRef& ref : refs_) {
    if (ref.kind == kind) out.push_back(ref);
  }
  std::sort(out.begin(), out.end());
  return out;
}

void AGraph::ForEachNode(const std::function<void(NodeRef, std::string_view)>& fn) const {
  for (size_t i = 0; i < refs_.size(); ++i) fn(refs_[i], node_labels_[i]);
}

void AGraph::ForEachEdge(const std::function<void(const EdgeRecord&)>& fn) const {
  for (size_t i = 0; i < refs_.size(); ++i) {
    for (const Edge& e : out_[i]) {
      fn({refs_[i], refs_[e.other], labels_[e.label]});
    }
  }
}

util::Result<Path> AGraph::FindPath(NodeRef from, NodeRef to,
                                    const PathOptions& options) const {
  GRAPHITTI_ASSIGN_OR_RETURN(uint32_t src, DenseIndex(from));
  GRAPHITTI_ASSIGN_OR_RETURN(uint32_t dst, DenseIndex(to));

  std::vector<uint32_t> allowed;
  for (const std::string& l : options.allowed_labels) {
    auto it = label_index_.find(l);
    if (it != label_index_.end()) allowed.push_back(it->second);
  }
  if (!options.allowed_labels.empty() && allowed.empty()) {
    return util::Status::NotFound("no edges carry any of the allowed labels");
  }
  auto label_ok = [&](uint32_t l) {
    return allowed.empty() ||
           std::find(allowed.begin(), allowed.end(), l) != allowed.end();
  };

  if (src == dst) {
    Path p;
    p.nodes = {from};
    return p;
  }

  // BFS recording (parent, edge label) per visited node.
  constexpr uint32_t kUnvisited = ~0u;
  std::vector<uint32_t> parent(refs_.size(), kUnvisited);
  std::vector<uint32_t> parent_label(refs_.size(), 0);
  std::vector<size_t> depth(refs_.size(), 0);
  std::deque<uint32_t> queue;
  parent[src] = src;
  queue.push_back(src);

  bool found = false;
  while (!queue.empty() && !found) {
    uint32_t cur = queue.front();
    queue.pop_front();
    if (depth[cur] >= options.max_hops) continue;
    auto visit = [&](const Edge& e) {
      if (found || !label_ok(e.label) || parent[e.other] != kUnvisited) return;
      parent[e.other] = cur;
      parent_label[e.other] = e.label;
      depth[e.other] = depth[cur] + 1;
      if (e.other == dst) {
        found = true;
        return;
      }
      queue.push_back(e.other);
    };
    for (const Edge& e : out_[cur]) visit(e);
    if (!options.directed) {
      for (const Edge& e : in_[cur]) visit(e);
    }
  }

  if (!found) {
    return util::Status::NotFound("no path from " + from.ToString() + " to " + to.ToString());
  }

  Path path;
  uint32_t cur = dst;
  while (cur != src) {
    path.nodes.push_back(refs_[cur]);
    path.edge_labels.push_back(labels_[parent_label[cur]]);
    cur = parent[cur];
  }
  path.nodes.push_back(refs_[src]);
  std::reverse(path.nodes.begin(), path.nodes.end());
  std::reverse(path.edge_labels.begin(), path.edge_labels.end());
  return path;
}

std::vector<NodeRef> AGraph::IndirectlyRelatedContents(NodeRef content) const {
  std::vector<NodeRef> out;
  if (content.kind != NodeKind::kContent) return out;
  for (const NodeRef& referent : Neighbors(content)) {
    if (referent.kind != NodeKind::kReferent) continue;
    for (const NodeRef& other : Neighbors(referent)) {
      if (other.kind == NodeKind::kContent && other != content) out.push_back(other);
    }
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

}  // namespace agraph
}  // namespace graphitti
