// Guttman R-tree (quadratic split) for 2D/3D region substructures.
#ifndef GRAPHITTI_SPATIAL_RTREE_H_
#define GRAPHITTI_SPATIAL_RTREE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "spatial/rect.h"
#include "util/result.h"
#include "util/status.h"

namespace graphitti {
namespace spatial {

struct RTreeEntry {
  Rect rect;
  uint64_t id = 0;

  bool operator==(const RTreeEntry& other) const {
    return rect == other.rect && id == other.id;
  }
};

/// Dynamic R-tree: insert/erase/window/containment/kNN. All stored rects
/// must have the tree's dimensionality.
class RTree {
 public:
  /// `max_entries` is the node fan-out M (min fill is M/2, floor 2).
  explicit RTree(int dims = 2, int max_entries = 16);
  ~RTree() = default;
  RTree(const RTree&) = delete;
  RTree& operator=(const RTree&) = delete;
  RTree(RTree&&) = default;
  RTree& operator=(RTree&&) = default;

  int dims() const { return dims_; }

  /// Inserts; InvalidArgument for invalid or wrong-dimension rects,
  /// AlreadyExists for an exact (rect, id) duplicate.
  util::Status Insert(const Rect& rect, uint64_t id);

  /// Sort-Tile-Recursive bulk load: builds a packed tree in O(n log n) with
  /// near-full nodes (better query fan-out than repeated Insert). Duplicate
  /// (rect, id) pairs are rejected.
  static util::Result<RTree> BulkLoad(std::vector<RTreeEntry> entries, int dims = 2,
                                      int max_entries = 16);

  /// Removes an exact (rect, id) pair; NotFound if absent.
  util::Status Erase(const Rect& rect, uint64_t id);

  /// All entries whose rect overlaps `window`, sorted by id.
  std::vector<RTreeEntry> Window(const Rect& window) const;

  /// Visits every entry overlapping `window` in tree (unspecified) order —
  /// the streaming form of Window() for consumers that do not need the
  /// id-sorted materialized vector.
  void ForEachOverlap(const Rect& window,
                      const std::function<void(const RTreeEntry&)>& fn) const;

  /// All entries fully contained in `window`, sorted by id.
  std::vector<RTreeEntry> ContainedIn(const Rect& window) const;

  /// The k entries nearest to `target` (best-first search on MinDist).
  std::vector<RTreeEntry> Nearest(const Rect& target, size_t k) const;

  /// Visits every stored entry (arbitrary order).
  void ForEach(const std::function<void(const RTreeEntry&)>& fn) const;

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  int height() const;

  /// Validates bounding-box containment, fill factors and leaf depth
  /// uniformity (test hook).
  bool CheckInvariants() const;

  /// Deep structural copy for copy-on-write version publication.
  RTree Clone() const;

 private:
  struct Node;
  struct NodeEntry {
    Rect rect;
    std::unique_ptr<Node> child;  // internal entries
    uint64_t id = 0;              // leaf entries
  };
  struct Node {
    bool leaf = true;
    std::vector<NodeEntry> entries;
  };

  Rect NodeBound(const Node& node) const;
  void SplitNode(Node* node, std::unique_ptr<Node>* new_node_out);
  void ReinsertEntry(NodeEntry entry, int target_depth);
  int HeightRec(const Node* node) const;

  int dims_;
  size_t max_entries_;
  size_t min_entries_;
  std::unique_ptr<Node> root_;
  size_t size_ = 0;
};

}  // namespace spatial
}  // namespace graphitti

#endif  // GRAPHITTI_SPATIAL_RTREE_H_
