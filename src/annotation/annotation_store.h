// AnnotationStore: the commit pipeline and search surface over annotations.
//
// Commit wires the three §II structures together:
//   1. the content XML joins the document collection (searchable via
//      keyword index, XPath and XQuery),
//   2. each marked substructure becomes (or reuses) a Referent and is
//      inserted into the shared interval-tree/R-tree indexes,
//   3. content/referent/term/object nodes and labeled edges are added to
//      the a-graph.
//
// Thread-safety: the store performs no synchronization of its own; the
// owning core::Graphitti runs Commit/Remove on its gate's exclusive side
// and everything else on the shared side. The store keeps that split
// clean by building ALL read-acceleration state eagerly at commit time —
// keyword postings, the per-annotation lowercase text that phrase search
// scans (lower_text_), the per-domain referent index — so no const search
// method ever writes. The one non-const lookup, TermNode (creates the
// term node on first use), is only called from Commit.
#ifndef GRAPHITTI_ANNOTATION_ANNOTATION_STORE_H_
#define GRAPHITTI_ANNOTATION_ANNOTATION_STORE_H_

#include <atomic>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "agraph/agraph.h"
#include "annotation/annotation.h"
#include "spatial/index_manager.h"
#include "util/string_interner.h"
#include "util/thread_annotations.h"
#include "util/result.h"

namespace graphitti {
namespace annotation {

/// Edge labels the store writes into the a-graph.
inline constexpr std::string_view kEdgeAnnotates = "annotates";      // content -> referent
inline constexpr std::string_view kEdgeRefersTo = "refers-to";       // content -> term
inline constexpr std::string_view kEdgeOfObject = "of-object";       // referent -> object

class AnnotationStore {
 public:
  /// The store borrows the index manager and a-graph owned by the Graphitti
  /// instance; both must outlive it.
  AnnotationStore(spatial::IndexManager* indexes, agraph::AGraph* graph);

  AnnotationStore(const AnnotationStore&) = delete;
  AnnotationStore& operator=(const AnnotationStore&) = delete;

  /// Deep copy for copy-on-write version publication (util/epoch.h): the
  /// clone borrows `indexes`/`graph` (the *clone's* counterparts, not this
  /// store's). Safe to call while reader threads hydrate cold content on
  /// this store concurrently — the copy runs under hydrate_mu_, the only
  /// lock those logically-const fills take.
  std::unique_ptr<AnnotationStore> Clone(spatial::IndexManager* indexes,
                                         agraph::AGraph* graph) const;

  // --- Commit / remove ---

  /// Commits a built annotation: assigns ids, materializes the XML, indexes
  /// substructures (deduplicating identical marks into shared referents),
  /// and extends the a-graph. Errors are validated up front (invalid marks,
  /// unknown coordinate systems); a failure that can only surface mid-way
  /// through the marks loop (e.g. a region whose rect dims mismatch its
  /// registered coordinate system) rolls back the referents and content
  /// node staged for this annotation, so a failed Commit never leaves the
  /// store half-mutated. `forced_id` (non-zero) preserves a persisted id;
  /// it must not collide with an existing annotation.
  util::Result<AnnotationId> Commit(const AnnotationBuilder& builder,
                                    AnnotationId forced_id = 0);

  /// Commits a batch of annotations through the bulk pipeline. Every
  /// builder is validated up front — marks, coordinate systems (including
  /// rect-dims canonicalization), forced-id collisions against the store
  /// and within the batch — before any state changes, so a bad builder
  /// rejects the whole batch with the store untouched (all-or-nothing,
  /// unlike a loop of Commit which stops at the first failure). Referent
  /// interning then stages spatial insertion into per-domain interval and
  /// per-canonical-system region accumulators that flush through
  /// IndexManager::BulkLoadIntervals / BulkLoadRegions (one tree build per
  /// touched domain); keyword postings append in one pass (ids ascend, so
  /// appends are already sorted) with per-touched-token sortedness repair
  /// at flush for out-of-order forced ids; a-graph node capacity is
  /// reserved from batch totals and edges wire by dense index. On
  /// success, observable state (assigned ids, query answers, a-graph
  /// shape, integrity) is identical to committing the builders one by one.
  /// `forced_ids`, when non-empty, must have one entry per builder
  /// (0 = assign fresh) — the persistence-reload path.
  ///
  /// `prebuilt_contents`, when non-null, must have one document per
  /// builder; a non-empty document is *consumed* (moved, id attribute
  /// restamped) as that annotation's content instead of re-serializing the
  /// builder through BuildContentXml — the reload fast path, where the
  /// content was just parsed from disk. An empty document falls back to
  /// BuildContentXml. Callers must pass documents that round-trip to the
  /// builder (FromContentXml(doc) == builder), or stored content and
  /// search text will disagree with the per-commit path.
  util::Result<std::vector<AnnotationId>> CommitBatch(
      const std::vector<AnnotationBuilder>& builders,
      const std::vector<AnnotationId>& forced_ids = {},
      std::vector<xml::XmlDocument>* prebuilt_contents = nullptr);

  /// Consuming overload: identical observable semantics, but each
  /// annotation's metadata (Dublin Core fields, body, user tags, ontology
  /// refs) is moved out of its builder instead of copied — for callers
  /// that discard the builders afterwards, like persistence reload.
  util::Result<std::vector<AnnotationId>> CommitBatch(
      std::vector<AnnotationBuilder>&& builders,
      const std::vector<AnnotationId>& forced_ids = {},
      std::vector<xml::XmlDocument>* prebuilt_contents = nullptr);

  /// Removes an annotation; referents drop a refcount and disappear from
  /// spatial indexes and the a-graph when orphaned.
  util::Status Remove(AnnotationId id);

  // --- Lookup ---
  const Annotation* Get(AnnotationId id) const;
  const Referent* GetReferent(ReferentId id) const;
  size_t size() const { return annotations_.size(); }
  size_t num_referents() const { return referents_.size(); }

  /// All annotation ids, ascending.
  std::vector<AnnotationId> Ids() const;

  /// All referent ids, ascending.
  std::vector<ReferentId> ReferentIds() const;

  // --- Streaming enumeration (the query executor's candidate feeds) ---
  //
  // These visit store entries in ascending-id order without materializing an
  // id vector and with direct access to the entry, so a filtering consumer
  // pays no per-id lookup.

  /// Visits every annotation in ascending id order.
  void ForEachAnnotation(
      const std::function<void(AnnotationId, const Annotation&)>& fn) const;

  /// Visits every referent in ascending id order.
  void ForEachReferent(
      const std::function<void(ReferentId, const Referent&)>& fn) const;

  /// Visits the referents whose substructure domain equals `domain`, in
  /// ascending id order. Index-backed: O(|referents in domain|), not
  /// O(|all referents|) — the fast path for DOMAIN-filtered subqueries.
  void ForEachReferentInDomain(
      std::string_view domain,
      const std::function<void(ReferentId, const Referent&)>& fn) const;

  /// Annotations referencing the given referent.
  std::vector<AnnotationId> AnnotationsOfReferent(ReferentId id) const;

  /// Referent whose substructure equals `sub`, if any.
  util::Result<ReferentId> FindReferent(const substructure::Substructure& sub) const;

  // --- Content search ---

  /// Annotations whose content contains `word` (keyword inverted index;
  /// case-insensitive, alphanumeric tokenization).
  std::vector<AnnotationId> SearchKeyword(std::string_view word) const;

  /// Annotations containing all of `words`.
  std::vector<AnnotationId> SearchAllKeywords(const std::vector<std::string>& words) const;

  /// Substring search over serialized content, accelerated by the keyword
  /// index when the phrase tokenizes to at least one word.
  std::vector<AnnotationId> SearchPhrase(std::string_view phrase) const;

  /// The XML collection view for XQuery ("collection()"). Hydrates any
  /// still-cold documents (see ContentOf).
  std::vector<const xml::XmlDocument*> Collection() const;

  // --- Content access (lazy hydration) ---
  //
  // After a binary-snapshot restore, annotation content arrives as
  // serialized XML bytes parked in cold_content_; the DOM is parsed on
  // first access instead of at load time (parsing 50k documents dominates
  // restart cost). These accessors are the only sanctioned way to read
  // Annotation::content — they are safe under the engine's shared gate
  // (internal mutex + atomic fast path), and on a store with no cold
  // entries (every store that never restored a snapshot) the fast path is
  // a single relaxed-ish atomic load.

  /// The annotation's content DOM, hydrating it from the cold bytes first
  /// if needed. The returned reference lives as long as the annotation.
  const xml::XmlDocument& ContentOf(const Annotation& ann) const;

  /// The serialized content (ToString(false) form) WITHOUT hydrating:
  /// returns the cold bytes verbatim when present, else serializes the hot
  /// DOM. Byte-exact across snapshot round-trips.
  std::string ContentXml(const Annotation& ann) const;

  /// Whether the annotation has any content (hot or cold) — the integrity
  /// check's replacement for `!ann.content.empty()`.
  bool HasContent(const Annotation& ann) const;

  // --- Snapshot restore ---

  /// One referent as decoded from a snapshot.
  struct RestoredReferent {
    Referent ref;
    /// Whether the a-graph had a referent->object "of-object" edge (absent
    /// when a later commit adopted the object id without re-marking).
    bool object_edge = false;
  };

  /// One annotation as decoded from a snapshot: metadata hot, content cold.
  struct RestoredAnnotation {
    Annotation ann;           // content left empty
    std::string content_xml;  // serialized content, hydrated on demand
    std::string lower_text;   // pre-lowered content text for phrase search
  };

  /// The keyword index as decoded from a snapshot: token strings in dense
  /// id order with their ascending posting lists. Restoring this verbatim
  /// skips re-tokenizing every document at load time.
  struct RestoredKeywordIndex {
    std::vector<std::string> tokens;
    std::vector<std::vector<AnnotationId>> postings;
  };

  /// Rebuilds the full store state from decoded snapshot sections. The
  /// store must be empty; `referents` and `annotations` must be ascending
  /// by id; object nodes referenced by referents must already exist in the
  /// a-graph (core::Graphitti restores objects first). Spatial entries are
  /// bulk-loaded per domain; a-graph nodes/edges are wired in the same
  /// order the original commits produced, so ExportAGraph of a restored
  /// engine matches the saved one line for line.
  util::Status RestoreSnapshotState(std::vector<RestoredReferent> referents,
                                    std::vector<RestoredAnnotation> annotations,
                                    RestoredKeywordIndex keyword_index,
                                    std::vector<std::string> term_names,
                                    uint64_t next_annotation_id,
                                    uint64_t next_referent_id);

  // --- Snapshot encode accessors (core/durability.cc) ---
  const std::vector<std::string>& TermNames() const { return term_names_; }
  size_t NumTokens() const { return postings_.size(); }
  std::string_view TokenString(uint32_t token_id) const {
    return token_ids_.StringOf(token_id);
  }
  const std::vector<AnnotationId>& PostingsOf(uint32_t token_id) const {
    return postings_[token_id];
  }
  std::string_view LowerTextOf(AnnotationId id) const;
  uint64_t next_annotation_id() const { return next_annotation_id_; }
  uint64_t next_referent_id() const { return next_referent_id_; }

  /// Runs a compiled-on-the-fly XQuery over the collection; returns matching
  /// annotation ids (document order).
  util::Result<std::vector<AnnotationId>> XQuerySearch(std::string_view flwor) const;

  // --- Ontology term nodes ---

  /// Stable a-graph NodeRef for a qualified ontology term ("onto:term");
  /// creates the node on first use.
  agraph::NodeRef TermNode(const std::string& qualified);
  /// Lookup without creation; NotFound when the term was never referenced.
  util::Result<agraph::NodeRef> FindTermNode(const std::string& qualified) const;
  /// Reverse lookup; empty when the node id is unknown.
  std::string TermName(agraph::NodeRef ref) const;

  // --- a-graph node helpers ---
  static agraph::NodeRef ContentNode(AnnotationId id) {
    return agraph::NodeRef::Content(id);
  }
  static agraph::NodeRef ReferentNode(ReferentId id) {
    return agraph::NodeRef::Referent(id);
  }

 private:
  /// Undo log for one Commit's marks loop: shared referents whose object
  /// id the commit adopted (had none before), and object nodes the commit
  /// created in the a-graph — restored/removed if a later mark fails, so a
  /// failed Commit leaves no trace.
  struct MarkUndo {
    std::vector<ReferentId> adoptions;
    std::vector<agraph::NodeRef> created_object_nodes;
  };

  /// Deferred spatial insertions for one CommitBatch: interval entries per
  /// 1D domain and canonical-frame region entries per canonical system,
  /// flushed through the IndexManager bulk builds after staging.
  /// Flush order across domains is independent (one tree per domain), so
  /// hashed maps are fine — and cheaper, as these are probed once per mark.
  struct BatchStaging {
    std::unordered_map<std::string, std::vector<spatial::IntervalEntry>> intervals;
    std::unordered_map<std::string, std::vector<spatial::RTreeEntry>> regions;
  };

  /// Shared CommitBatch engine. `consume` is true only for the rvalue
  /// overload, which owns the builders and may steal their metadata.
  util::Result<std::vector<AnnotationId>> CommitBatchImpl(
      const std::vector<AnnotationBuilder>& builders,
      const std::vector<AnnotationId>& forced_ids,
      std::vector<xml::XmlDocument>* prebuilt_contents, bool consume);

  /// Tokenizes `ann`'s search text (content text, user-tag keys, ontology
  /// terms) into `words` — sorted, deduplicated views into `text_buf` —
  /// and returns the length of the lowered *content* prefix in `text_buf`
  /// (what the commit paths copy into lower_text_; this function itself
  /// mutates no store state, so the removal path reuses it freely). Both
  /// out-params are caller-owned scratch, reusable across calls (a batch
  /// tokenizes thousands of annotations with two allocations total); the
  /// views die with the next reuse of `text_buf`.
  size_t TokenizeForIndex(const Annotation& ann, std::string* text_buf,
                          std::vector<std::string_view>* words);
  /// Token id for `w`, interning it (with an empty posting list) on first
  /// sight.
  uint32_t InternToken(std::string_view w);
  void IndexContentText(AnnotationId id, const Annotation& ann);
  /// Drops `ann`'s postings by re-deriving its token set from the stored
  /// fields (the same deterministic derivation IndexContentText used), so
  /// ingest never materializes per-annotation token vectors.
  void UnindexContentText(AnnotationId id, const Annotation& ann);
  /// Interns (or refcounts) the referent for `sub`. With `staging` null,
  /// spatial kinds are inserted into the shared index immediately
  /// (per-commit path); with `staging` set, the index entry is accumulated
  /// for a later bulk flush instead (batch path).
  /// `node_index`, when non-null, receives the referent's a-graph dense
  /// index so batch callers can wire edges without re-hashing the ref
  /// (valid only until the next node removal). `undo`, when non-null,
  /// collects the side effects a failing commit must reverse (object-id
  /// adoptions, object nodes created).
  util::Result<ReferentId> InternReferent(const substructure::Substructure& sub,
                                          uint64_t object_id,
                                          BatchStaging* staging = nullptr,
                                          uint32_t* node_index = nullptr,
                                          MarkUndo* undo = nullptr);
  /// Removes one reference to `id`, erasing the referent entirely at zero.
  void ReleaseReferent(ReferentId id);

  spatial::IndexManager* indexes_;  // borrowed
  agraph::AGraph* graph_;           // borrowed

  std::map<AnnotationId, Annotation> annotations_;
  std::map<ReferentId, Referent> referents_;
  // Substructure::ToString() key -> referent. Hashed, not ordered: the key
  // is only ever used for exact lookup, and bulk ingest hammers it once per
  // mark.
  std::unordered_map<std::string, ReferentId> referent_by_key_;
  // Domain -> ascending referent ids (ids are monotonically issued, so
  // push_back keeps each list sorted). Drives ForEachReferentInDomain.
  // Hashed: only per-domain lookups, never ordered iteration. Queries pay
  // one short std::string construction per call (C++17 unordered maps have
  // no heterogeneous find); ingest probes it once per new referent.
  std::unordered_map<std::string, std::vector<ReferentId>> referents_by_domain_;

  // Keyword inverted index with interned tokens: token string -> dense token
  // id; postings_[token id] is the ascending posting list of annotations
  // containing the token. Removal re-derives an annotation's token set from
  // its stored fields (see UnindexContentText), so ingest stores no
  // per-annotation token vectors. lower_text_ caches the lower-cased
  // serialized content per annotation so phrase search never re-derives
  // (and re-lowers) it per candidate.
  util::StringInterner token_ids_;
  std::vector<std::vector<AnnotationId>> postings_;
  std::unordered_map<AnnotationId, std::string> lower_text_;

  std::map<std::string, uint64_t> term_node_ids_;
  std::vector<std::string> term_names_;  // dense id -> qualified name

  uint64_t next_annotation_id_ = 1;
  uint64_t next_referent_id_ = 1;

  // Cold content store for snapshot-restored annotations: id -> serialized
  // XML not yet parsed into Annotation::content. ContentOf moves entries
  // out as they hydrate; has_cold_ flips false when the map drains, which
  // re-arms the lock-free fast path. All mutable: hydration is a
  // logically-const cache fill performed under hydrate_mu_.
  mutable util::Mutex hydrate_mu_;
  mutable std::unordered_map<AnnotationId, std::string> cold_content_
      GUARDED_BY(hydrate_mu_);
  mutable std::atomic<bool> has_cold_{false};
};

}  // namespace annotation
}  // namespace graphitti

#endif  // GRAPHITTI_ANNOTATION_ANNOTATION_STORE_H_
