#include "persist/snapshot.h"

#include <cstring>

#include "persist/format.h"
#include "util/crc32c.h"

namespace graphitti {
namespace persist {

using util::Result;
using util::Status;

namespace {
constexpr size_t kHeaderSize = 16;  // magic + version + generation
constexpr size_t kTrailerSize = 4;  // crc32c
}  // namespace

std::string SnapshotFileName(uint64_t generation) {
  return "snapshot-" + std::to_string(generation);
}

std::string WalFileName(uint64_t generation) {
  return "wal-" + std::to_string(generation);
}

std::optional<uint64_t> ParseGeneration(std::string_view name, std::string_view prefix) {
  if (name.size() <= prefix.size() || name.compare(0, prefix.size(), prefix) != 0) {
    return std::nullopt;
  }
  std::string_view digits = name.substr(prefix.size());
  uint64_t value = 0;
  for (char c : digits) {
    if (c < '0' || c > '9') return std::nullopt;
    value = value * 10 + static_cast<uint64_t>(c - '0');
  }
  return value;
}

Status WriteSnapshotFile(Env* env, const std::string& path, uint64_t generation,
                         std::string_view body) {
  Encoder enc;
  enc.PutRaw(std::string_view(kSnapshotMagic, 4));
  enc.PutU32(kSnapshotVersion);
  enc.PutU64(generation);
  enc.PutRaw(body);
  uint32_t crc = util::Crc32c(enc.buffer());
  enc.PutU32(crc);
  return env->WriteFileAtomic(path, enc.buffer());
}

Result<SnapshotContents> ReadSnapshotFile(const Env& env, const std::string& path) {
  GRAPHITTI_ASSIGN_OR_RETURN(std::string data, env.ReadFileToString(path));
  if (data.size() < kHeaderSize + kTrailerSize) {
    return Status::Internal("snapshot '" + path + "' is truncated");
  }
  if (std::memcmp(data.data(), kSnapshotMagic, 4) != 0) {
    return Status::Internal("snapshot '" + path + "' has bad magic");
  }
  const std::string_view checked(data.data(), data.size() - kTrailerSize);
  Decoder trailer(std::string_view(data.data() + checked.size(), kTrailerSize));
  GRAPHITTI_ASSIGN_OR_RETURN(uint32_t stored_crc, trailer.GetU32());
  if (util::Crc32c(checked) != stored_crc) {
    return Status::Internal("snapshot '" + path + "' fails its checksum");
  }
  Decoder header(std::string_view(data.data() + 4, 12));
  GRAPHITTI_ASSIGN_OR_RETURN(uint32_t version, header.GetU32());
  if (version != kSnapshotVersion) {
    return Status::Internal("snapshot '" + path + "' has unsupported version " +
                            std::to_string(version));
  }
  SnapshotContents contents;
  GRAPHITTI_ASSIGN_OR_RETURN(contents.generation, header.GetU64());
  contents.body = data.substr(kHeaderSize, data.size() - kHeaderSize - kTrailerSize);
  return contents;
}

}  // namespace persist
}  // namespace graphitti
